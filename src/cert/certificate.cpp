#include "cert/certificate.hpp"

#include <cinttypes>
#include <cstdio>

#include "base/log.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"

namespace presat {

namespace {

int32_t toDimacs(Lit l) {
  int32_t v = static_cast<int32_t>(l.var()) + 1;
  return l.sign() ? -v : v;
}

void appendInt(std::string& out, int64_t v) {
  char buf[24];
  int n = std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out.append(buf, static_cast<size_t>(n));
}

void appendHex64(std::string& out, uint64_t v) {
  char buf[20];
  int n = std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  out.append(buf, static_cast<size_t>(n));
}

void appendLitLine(std::string& out, char tag, const LitVec& lits) {
  out.push_back(tag);
  out.push_back(' ');
  for (Lit l : lits) {
    appendInt(out, toDimacs(l));
    out.push_back(' ');
  }
  out.append("0\n");
}

// Cube (projected index space) -> literals over the CNF variables in `scope`.
LitVec cubeToCnfLits(const LitVec& cube, const std::vector<Var>& scope) {
  LitVec out;
  out.reserve(cube.size());
  for (Lit l : cube) {
    size_t idx = static_cast<size_t>(l.var());
    PRESAT_CHECK(idx < scope.size()) << "certificate cube literal outside the projection scope";
    out.push_back(mkLit(scope[idx], l.sign()));
  }
  return out;
}

}  // namespace

uint64_t certCnfHash(const Cnf& cnf) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&h](int32_t v) {
    h ^= static_cast<uint64_t>(static_cast<int64_t>(v));
    h *= 1099511628211ull;  // FNV-1a prime
  };
  for (const Clause& clause : cnf.clauses()) {
    for (Lit l : clause) mix(toDimacs(l));
    mix(0);
  }
  return h;
}

CertificateResult buildCertificate(const CertificateSpec& spec) {
  PRESAT_CHECK(spec.cnf != nullptr && spec.scope != nullptr && spec.cubes != nullptr);
  const Cnf& cnf = *spec.cnf;
  const std::vector<Var>& scope = *spec.scope;
  const std::vector<LitVec>& cubes = *spec.cubes;
  const bool complete = spec.outcome == Outcome::kComplete;

  CertificateResult out;
  std::string& cert = out.cert;
  cert.reserve(1u << 16);

  // --- header ---------------------------------------------------------------
  cert.append("p presat-cert 1\n");
  cert.append("h engine ").append(spec.engine).append("\n");
  cert.append("h circuit ");
  appendHex64(cert, spec.circuitHash);
  cert.push_back('\n');
  cert.append("h vars ");
  appendInt(cert, cnf.numVars());
  cert.push_back('\n');
  cert.append("h scope ");
  appendInt(cert, static_cast<int64_t>(scope.size()));
  for (Var v : scope) {
    cert.push_back(' ');
    appendInt(cert, static_cast<int64_t>(v) + 1);
  }
  cert.push_back('\n');
  cert.append("h flags project=").append(spec.project ? "1" : "0");
  cert.append(" compress=").append(spec.compress ? "1" : "0");
  cert.append(" disjoint=").append(spec.disjoint ? "1" : "0");
  cert.append(" jobs=");
  appendInt(cert, spec.jobs);
  cert.push_back('\n');
  cert.append("h outcome ").append(outcomeName(spec.outcome)).append("\n");
  cert.append("h cnfhash ");
  appendHex64(cert, certCnfHash(cnf));
  cert.push_back('\n');

  // --- formula --------------------------------------------------------------
  for (const Clause& clause : cnf.clauses()) appendLitLine(cert, 'f', clause);

  // --- cubes ----------------------------------------------------------------
  for (const LitVec& cube : cubes) appendLitLine(cert, 'c', cube);

  // --- per-cube witnesses ---------------------------------------------------
  // One assumption solve per cube on a fresh ungoverned solver: the soundness
  // invariant (every cube contains only genuine solutions, degraded runs
  // included) guarantees SAT. The full model is the justification trail the
  // checker replays without search.
  {
    Solver witness;
    bool loadable = witness.addCnf(cnf);
    for (const LitVec& cube : cubes) {
      PRESAT_CHECK(loadable) << "certificate witness: cover non-empty but the CNF is UNSAT";
      lbool status = witness.solve(cubeToCnfLits(cube, scope));
      PRESAT_CHECK(status.isTrue())
          << "certificate witness: cube contains no solution (unsound cover)";
      LitVec model;
      model.reserve(witness.model().size());
      for (Var v = 0; v < static_cast<Var>(witness.model().size()); ++v) {
        lbool value = witness.model()[static_cast<size_t>(v)];
        if (value.isUndef()) continue;
        model.push_back(mkLit(v, value.isFalse()));
      }
      appendLitLine(cert, 'j', model);
    }
  }

  // --- guides and compression witnesses -------------------------------------
  if (spec.guides != nullptr) {
    for (const LitVec& guide : *spec.guides) appendLitLine(cert, 'g', guide);
  }
  if (spec.merges != nullptr) {
    for (const CompressMergeRecord& m : *spec.merges) {
      cert.append("w ");
      appendInt(cert, static_cast<int64_t>(m.mergeVar) + 1);
      cert.push_back(' ');
      for (Lit l : m.merged) {
        appendInt(cert, toDimacs(l));
        cert.push_back(' ');
      }
      cert.append("0\n");
    }
  }

  // --- completeness proof ---------------------------------------------------
  // Native when the engine logged one (serial CNF runs); otherwise, for
  // complete covers, a post-hoc replay: F plus the blocking clause of every
  // cube must be UNSAT, and the replay solver's own proof log — learnt
  // clauses down to the closing empty clause — certifies it. Partial covers
  // carry the native log if any (its additions are still valid RUP steps)
  // but no UNSAT termination.
  ProofLog replay;
  const ProofLog* proof = spec.nativeProof;
  if (complete && (proof == nullptr || !proof->endsWithEmptyClause())) {
    Solver closer;
    closer.setProofLog(&replay);
    bool consistent = closer.addCnf(cnf);
    for (const LitVec& cube : cubes) {
      if (!consistent) break;
      LitVec blocking = cubeToCnfLits(cube, scope);
      for (Lit& l : blocking) l = ~l;
      consistent = closer.addClause(blocking);
    }
    if (consistent) {
      lbool status = closer.solve();
      PRESAT_CHECK(status.isFalse())
          << "certificate replay: cover claimed complete but a solution escapes it";
    }
    proof = &replay;
  }
  if (proof != nullptr) {
    proof->appendCertLines(cert);
    out.dratText = proof->toTextDrat();
    out.dratBinary = proof->toBinaryDrat();
    if (complete && !proof->endsWithEmptyClause()) {
      // Defensive terminator; buildable only if the RUP chain above reaches
      // a conflict, which the checker independently confirms.
      cert.append("a 0\n");
      out.dratText.append("0\n");
      out.dratBinary.push_back('a');
      out.dratBinary.push_back('\0');
    }
  }

  cert.append("h end\n");
  return out;
}

}  // namespace presat
