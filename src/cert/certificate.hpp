// presat-cert-v1: independently verifiable disjoint-cover certificates.
//
// A certificate packages everything an external checker needs to verify a
// preimage cover without trusting this library: the CNF the query solved
// (`f` lines), the cover (`c` cubes over the projected scope), one model
// witness per cube (`j` lines — proof each cube contains only genuine
// solutions), the parallel split's guide cubes (`g` lines — the cross-shard
// disjointness argument), the wildcard-compression merge witnesses (`w`
// lines — one (x & A) | (~x & A) = A record per merge), and a DRAT-style
// completeness proof (`a`/`e` lines) whose final empty clause shows that
// F AND the blocking clauses of every cube is UNSAT — i.e. no solution
// escapes the cover. Partial (governor-degraded) covers carry no
// completeness proof; the checker then verifies soundness only and that the
// claimed outcome is an honest degradation reason.
//
// Line grammar (integers are signed DIMACS, 1-based; '0' terminates lists):
//   p presat-cert 1
//   h engine <name>
//   h circuit <16 hex digits>        structural hash of the source netlist
//   h vars <n>                       CNF variable count
//   h scope <k> <v_1> ... <v_k>      CNF variable of projected index i
//   h flags project=<0|1> compress=<0|1> disjoint=<0|1> jobs=<n>
//   h outcome <complete|deadline|memory|conflicts|cancelled|cube-cap>
//   h cnfhash <16 hex digits>        FNV-1a over the `f` integer stream
//   f <lits> 0                       one per CNF clause
//   c <lits> 0                       one per cube (projected index space)
//   j <lits> 0                       one per cube, same order (CNF space)
//   g <lits> 0                       guide cubes (projected index space)
//   w <var> <lits> 0                 merge witness: var eliminated, merged A
//   a <lits> 0 | e <lits> 0          proof: RUP addition / deletion
//   h end                            required trailer (truncation tripwire)
//
// The checker (src/checktool/presat_check.cpp) shares NO code with this
// library by design: it has its own parser and propagation loop, so a bug in
// the solver, arena, or merge logic cannot silently blind the verifier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "allsat/projection.hpp"
#include "cnf/cnf.hpp"
#include "govern/budget.hpp"

namespace presat {

class ProofLog;

struct CertificateSpec {
  const Cnf* cnf = nullptr;                    // formula the cover speaks about
  const std::vector<Var>* scope = nullptr;     // CNF var of projected index i
  const std::vector<LitVec>* cubes = nullptr;  // cover, projected index space
  // Optional sections (null/empty = omitted).
  const std::vector<LitVec>* guides = nullptr;
  const std::vector<CompressMergeRecord>* merges = nullptr;
  // Proof of the run that produced the cover, when one was logged natively
  // (serial CNF engines). When null and the cover is complete, the builder
  // replays the cover post-hoc: a fresh ungoverned solver proves
  // F AND blocking(cubes) UNSAT and that replay's log becomes the proof.
  const ProofLog* nativeProof = nullptr;
  Outcome outcome = Outcome::kComplete;
  bool disjoint = true;  // engine guarantees pairwise-disjoint cubes
  const char* engine = "";
  uint64_t circuitHash = 0;
  int jobs = 0;  // 0 = serial
  bool project = false;
  bool compress = false;
};

struct CertificateResult {
  std::string cert;        // presat-cert-v1 text
  std::string dratText;    // text DRAT of the proof embedded in the cert
  std::string dratBinary;  // binary DRAT of the same proof
};

// Builds the certificate. Witness models are completed with a fresh
// ungoverned solver (one assumption solve per cube) — every engine's cubes
// contain only genuine solutions, including governor-degraded partials, so
// the solves are SAT by the soundness invariant (check-failure otherwise).
CertificateResult buildCertificate(const CertificateSpec& spec);

// FNV-1a over the clause integer stream (each clause's DIMACS literals
// followed by a 0). The checker recomputes this over its parsed `f` lines.
uint64_t certCnfHash(const Cnf& cnf);

}  // namespace presat
