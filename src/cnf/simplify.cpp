#include "cnf/simplify.hpp"

#include <algorithm>

#include "base/log.hpp"

namespace presat {

namespace {

// Sorts, deduplicates, and detects tautology. Returns false if the clause is
// a tautology (contains l and ~l) and should be dropped.
bool cleanClause(Clause& c) {
  std::sort(c.begin(), c.end());
  c.erase(std::unique(c.begin(), c.end()), c.end());
  for (size_t i = 1; i < c.size(); ++i) {
    if (c[i].var() == c[i - 1].var()) return false;
  }
  return true;
}

}  // namespace

std::optional<std::vector<lbool>> propagateUnits(const Cnf& input) {
  std::vector<lbool> value(static_cast<size_t>(input.numVars()), l_Undef);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Clause& c : input.clauses()) {
      Lit unassigned = kUndefLit;
      int numUnassigned = 0;
      bool sat = false;
      for (Lit l : c) {
        lbool v = value[static_cast<size_t>(l.var())];
        if (v.isUndef()) {
          ++numUnassigned;
          unassigned = l;
        } else if (v.isTrue() != l.sign()) {
          sat = true;
          break;
        }
      }
      if (sat) continue;
      if (numUnassigned == 0) return std::nullopt;  // conflict
      if (numUnassigned == 1) {
        value[static_cast<size_t>(unassigned.var())] = lbool(!unassigned.sign());
        changed = true;
      }
    }
  }
  return value;
}

SimplifyResult simplify(const Cnf& input) {
  SimplifyResult result;
  result.simplified = Cnf(input.numVars());
  auto forced = propagateUnits(input);
  if (!forced) {
    result.unsat = true;
    result.forced.assign(static_cast<size_t>(input.numVars()), l_Undef);
    return result;
  }
  result.forced = *forced;
  for (Clause c : input.clauses()) {
    if (!cleanClause(c)) continue;  // tautology
    Clause reduced;
    bool sat = false;
    for (Lit l : c) {
      lbool v = result.forced[static_cast<size_t>(l.var())];
      if (v.isUndef()) {
        reduced.push_back(l);
      } else if (v.isTrue() != l.sign()) {
        sat = true;
        break;
      }
    }
    if (sat) continue;
    // A clause fully falsified by forced values would have made propagation
    // report a conflict, so `reduced` is non-empty here; re-adding forced
    // units keeps the formula equisatisfiable with the original.
    PRESAT_CHECK(!reduced.empty());
    result.simplified.addClause(std::move(reduced));
  }
  // Preserve forced assignments as unit clauses so the simplified formula is
  // logically equivalent (not just equisatisfiable) over the variable space.
  for (Var v = 0; v < input.numVars(); ++v) {
    lbool val = result.forced[static_cast<size_t>(v)];
    if (!val.isUndef()) result.simplified.addUnit(mkLit(v, val.isFalse()));
  }
  return result;
}

}  // namespace presat
