#include "cnf/preprocess.hpp"

#include <algorithm>

#include "base/metrics.hpp"
#include "govern/faults.hpp"
#include "govern/governor.hpp"

namespace presat {

namespace {

// 64-bit clause signature for the subsumption prefilter: C can only subsume
// D when sig(C) & ~sig(D) == 0.
uint64_t clauseSignature(const Clause& c) {
  uint64_t sig = 0;
  for (Lit l : c) sig |= 1ull << (static_cast<uint32_t>(l.var()) & 63);
  return sig;
}

// Both clauses sorted: true iff every literal of `small` appears in `big`.
bool subsumes(const Clause& small, const Clause& big) {
  size_t j = 0;
  for (Lit l : small) {
    while (j < big.size() && big[j] < l) ++j;
    if (j == big.size() || big[j] != l) return false;
    ++j;
  }
  return true;
}

}  // namespace

std::vector<lbool> PreprocessedCnf::originalModel(const std::vector<lbool>& internalModel) const {
  std::vector<lbool> out(toInternal.size(), l_False);
  for (size_t v = 0; v < toInternal.size(); ++v) {
    Var iv = toInternal[v];
    // Verbatim copy, l_Undef included: projected witnesses (partial internal
    // models) must stay partial in the original space.
    if (iv != kNullVar && static_cast<size_t>(iv) < internalModel.size()) {
      out[v] = internalModel[static_cast<size_t>(iv)];
    }
  }
  for (Lit l : forcedLits) out[static_cast<size_t>(l.var())] = lbool(!l.sign());
  return out;
}

PreprocessedCnf preprocessCnf(const Cnf& cnf, const std::vector<Var>& frozen,
                              Governor* governor) {
  PreprocessedCnf out;
  const size_t n = static_cast<size_t>(cnf.numVars());
  out.stats.varsBefore = n;
  out.stats.clausesBefore = cnf.numClauses();

  std::vector<uint8_t> isFrozen(n, 0);
  for (Var v : frozen) {
    PRESAT_CHECK(v >= 0 && static_cast<size_t>(v) < n)
        << "frozen variable x" << v << " outside the formula";
    isFrozen[static_cast<size_t>(v)] = 1;
  }

  auto identity = [&] {
    out.cnf = cnf;
    out.toInternal.resize(n);
    out.toOriginal.resize(n);
    for (size_t v = 0; v < n; ++v) {
      out.toInternal[v] = static_cast<Var>(v);
      out.toOriginal[v] = static_cast<Var>(v);
    }
    out.stats.varsAfter = n;
    out.stats.clausesAfter = cnf.numClauses();
    out.stats.identityFallback = 1;
    return out;
  };

  // Injected preprocessing failure: degrade to the identity pass (always
  // sound — the solver just sees the unreduced formula) and surface the
  // injected resource exhaustion through the governor when one is attached.
  if (faults::maybeFail("cnf.preprocess")) {
    if (governor != nullptr) governor->trip(Outcome::kMemory);
    return identity();
  }

  // -- clean: sort literals, drop duplicates and tautologies -----------------
  std::vector<Clause> clauses;
  clauses.reserve(cnf.numClauses());
  for (const Clause& raw : cnf.clauses()) {
    Clause c = raw;
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    bool tautology = false;
    for (size_t i = 0; i + 1 < c.size(); ++i) {
      if (c[i].var() == c[i + 1].var()) {
        tautology = true;
        break;
      }
    }
    if (tautology) {
      ++out.stats.tautologies;
      continue;
    }
    clauses.push_back(std::move(c));
  }

  std::vector<uint8_t> alive(clauses.size(), 1);
  std::vector<uint8_t> eliminated(n, 0);

  // Occurrence lists and counts over the cleaned clauses (lists keep stale
  // entries for removed clauses; consumers skip dead indices).
  std::vector<std::vector<uint32_t>> occ(2 * n);
  std::vector<uint32_t> litCount(2 * n, 0);
  for (uint32_t i = 0; i < clauses.size(); ++i) {
    for (Lit l : clauses[i]) {
      occ[static_cast<size_t>(l.code())].push_back(i);
      ++litCount[static_cast<size_t>(l.code())];
    }
  }

  // -- pure-literal elimination to fixpoint on non-frozen variables ----------
  // Removing a clause can uncover new pure variables, so this is a worklist
  // pass: every variable that loses an occurrence gets re-examined.
  std::vector<Var> worklist;
  std::vector<uint8_t> queued(n, 0);
  auto enqueue = [&](Var v) {
    size_t idx = static_cast<size_t>(v);
    if (!queued[idx] && !isFrozen[idx] && !eliminated[idx]) {
      queued[idx] = 1;
      worklist.push_back(v);
    }
  };
  auto removeClause = [&](uint32_t ci) {
    alive[ci] = 0;
    for (Lit l : clauses[ci]) {
      --litCount[static_cast<size_t>(l.code())];
      enqueue(l.var());
    }
  };
  auto runPureElimination = [&] {
    while (!worklist.empty()) {
      Var v = worklist.back();
      worklist.pop_back();
      size_t idx = static_cast<size_t>(v);
      queued[idx] = 0;
      if (eliminated[idx]) continue;
      uint32_t pos = litCount[static_cast<size_t>(mkLit(v, false).code())];
      uint32_t neg = litCount[static_cast<size_t>(mkLit(v, true).code())];
      if (pos == 0 && neg == 0) continue;  // unused: the remap drops it
      if (pos != 0 && neg != 0) continue;  // both polarities: not pure
      Lit pure = mkLit(v, /*negated=*/pos == 0);
      eliminated[idx] = 1;
      ++out.stats.pureLiterals;
      out.forcedLits.push_back(pure);
      for (uint32_t ci : occ[static_cast<size_t>(pure.code())]) {
        if (alive[ci]) removeClause(ci);  // satisfied by the forced polarity
      }
    }
  };
  for (size_t v = 0; v < n; ++v) enqueue(static_cast<Var>(v));
  runPureElimination();

  // -- subsumption (duplicates included) -------------------------------------
  // Forward scan: for each clause C, candidates D ⊇ C all contain C's
  // least-occurring literal, so only that occurrence list is walked. The
  // 64-bit signature prefilter rejects most candidates without a merge.
  std::vector<uint64_t> sig(clauses.size());
  for (uint32_t i = 0; i < clauses.size(); ++i) {
    if (alive[i]) sig[i] = clauseSignature(clauses[i]);
  }
  for (uint32_t ci = 0; ci < clauses.size(); ++ci) {
    if (!alive[ci]) continue;
    const Clause& c = clauses[ci];
    if (c.empty()) continue;  // empty clause: UNSAT, leave the formula alone
    Lit best = c[0];
    for (Lit l : c) {
      if (litCount[static_cast<size_t>(l.code())] <
          litCount[static_cast<size_t>(best.code())]) {
        best = l;
      }
    }
    for (uint32_t di : occ[static_cast<size_t>(best.code())]) {
      if (di == ci || !alive[di]) continue;
      const Clause& d = clauses[di];
      if (d.size() < c.size()) continue;
      // Exact duplicates subsume each other; the earlier clause survives.
      if (d.size() == c.size() && di < ci) continue;
      if ((sig[ci] & ~sig[di]) != 0) continue;
      if (!subsumes(c, d)) continue;
      removeClause(di);
      ++out.stats.subsumedClauses;
    }
  }
  // Subsumption removals can uncover further pure variables.
  runPureElimination();

  // -- dense remap -----------------------------------------------------------
  // Kept: frozen variables (even if occurrence-free — free enumerable state
  // doubles projected counts and later clauses may mention them) plus every
  // variable still occurring. Mapping in increasing original order keeps the
  // remap monotone.
  out.toInternal.assign(n, kNullVar);
  for (size_t v = 0; v < n; ++v) {
    bool occurs = litCount[static_cast<size_t>(mkLit(static_cast<Var>(v), false).code())] != 0 ||
                  litCount[static_cast<size_t>(mkLit(static_cast<Var>(v), true).code())] != 0;
    if (isFrozen[v] || occurs) {
      out.toInternal[v] = static_cast<Var>(out.toOriginal.size());
      out.toOriginal.push_back(static_cast<Var>(v));
    }
  }
  out.cnf = Cnf(static_cast<int>(out.toOriginal.size()));
  for (uint32_t ci = 0; ci < clauses.size(); ++ci) {
    if (!alive[ci]) continue;
    Clause translated;
    translated.reserve(clauses[ci].size());
    for (Lit l : clauses[ci]) translated.push_back(out.internalLit(l));
    out.cnf.addClause(std::move(translated));
  }
  out.stats.varsAfter = out.toOriginal.size();
  out.stats.clausesAfter = out.cnf.numClauses();
  return out;
}

void exportPreprocessMetrics(const PreprocessStats& stats, Metrics& m) {
  m.inc("preprocess.vars_before", stats.varsBefore);
  m.inc("preprocess.vars_after", stats.varsAfter);
  m.inc("preprocess.clauses_before", stats.clausesBefore);
  m.inc("preprocess.clauses_after", stats.clausesAfter);
  m.inc("preprocess.pure_literals", stats.pureLiterals);
  m.inc("preprocess.subsumed_clauses", stats.subsumedClauses);
  m.inc("preprocess.tautologies", stats.tautologies);
  m.inc("preprocess.identity_fallback", stats.identityFallback);
}

}  // namespace presat
