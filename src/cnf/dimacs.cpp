#include "cnf/dimacs.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "base/log.hpp"

namespace presat {

DimacsFile parseDimacs(std::istream& in) {
  DimacsFile file;
  int declaredVars = -1;
  long declaredClauses = -1;
  Clause current;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;
    if (tok == "c") {
      std::string kind;
      if (ls >> kind && kind == "proj") {
        std::vector<Var> proj;
        long v;
        while (ls >> v) {
          PRESAT_CHECK(v >= 1) << "projection vars are 1-based positive ints";
          proj.push_back(static_cast<Var>(v - 1));
        }
        file.projection = std::move(proj);
      }
      continue;
    }
    if (tok == "p") {
      PRESAT_CHECK(declaredVars < 0) << "duplicate 'p cnf' header";
      std::string fmt;
      PRESAT_CHECK((ls >> fmt) && fmt == "cnf") << "expected 'p cnf' header";
      PRESAT_CHECK(ls >> declaredVars >> declaredClauses) << "bad 'p cnf' header";
      PRESAT_CHECK(declaredVars > 0) << "non-positive variable count in 'p cnf' header";
      PRESAT_CHECK(declaredClauses >= 0) << "negative clause count in 'p cnf' header";
      file.cnf = Cnf(declaredVars);
      continue;
    }
    // Clause data: integers terminated by 0 (clauses may span lines).
    ls.clear();
    ls.seekg(0);
    long v;
    while (ls >> v) {
      if (v == 0) {
        PRESAT_CHECK(declaredVars >= 0) << "clause before 'p cnf' header";
        file.cnf.addClause(current);
        current.clear();
      } else {
        PRESAT_CHECK(declaredVars >= 0) << "clause before 'p cnf' header";
        // Range-check before the int32 narrowing: |LONG_MIN| overflows and a
        // wrapped literal could silently alias a valid variable.
        PRESAT_CHECK(v >= -static_cast<long>(INT32_MAX) && v <= INT32_MAX &&
                     v >= -static_cast<long>(declaredVars) &&
                     v <= static_cast<long>(declaredVars))
            << "literal " << v << " exceeds declared variable count " << declaredVars;
        current.push_back(Lit::fromDimacs(static_cast<int32_t>(v)));
      }
    }
    if (!ls.eof()) {
      // Integer extraction stopped mid-line: the rest is not clause data.
      // A lone '%' is the SATLIB end-of-file marker; anything else means the
      // input is not DIMACS at all (e.g. a .bench netlist), and silently
      // skipping it would "parse" garbage into an empty formula.
      ls.clear();
      std::string bad;
      ls >> bad;
      if (bad == "%") break;
      PRESAT_CHECK(false) << "unparsable DIMACS line: '" << line << "'";
    }
  }
  PRESAT_CHECK(current.empty()) << "unterminated clause at end of DIMACS input";
  if (declaredClauses >= 0) {
    PRESAT_CHECK(static_cast<long>(file.cnf.numClauses()) == declaredClauses)
        << "clause count mismatch: declared " << declaredClauses << ", found "
        << file.cnf.numClauses();
  }
  if (file.projection) {
    for (Var v : *file.projection)
      PRESAT_CHECK(v < file.cnf.numVars()) << "projection var out of range";
  }
  return file;
}

DimacsFile parseDimacsString(const std::string& text) {
  std::istringstream in(text);
  return parseDimacs(in);
}

DimacsFile parseDimacsFile(const std::string& path) {
  std::ifstream in(path);
  PRESAT_CHECK(in.good()) << "cannot open DIMACS file: " << path;
  return parseDimacs(in);
}

void writeDimacs(std::ostream& out, const Cnf& cnf, const std::vector<Var>* projection) {
  if (projection) {
    out << "c proj";
    for (Var v : *projection) out << " " << (v + 1);
    out << "\n";
  }
  out << "p cnf " << cnf.numVars() << " " << cnf.numClauses() << "\n";
  for (const Clause& c : cnf.clauses()) {
    for (Lit l : c) out << l.toDimacs() << " ";
    out << "0\n";
  }
}

std::string toDimacsString(const Cnf& cnf, const std::vector<Var>* projection) {
  std::ostringstream out;
  writeDimacs(out, cnf, projection);
  return out.str();
}

}  // namespace presat
