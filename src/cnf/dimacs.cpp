#include "cnf/dimacs.hpp"

#include <fstream>
#include <sstream>

#include "base/log.hpp"

namespace presat {

DimacsFile parseDimacs(std::istream& in) {
  DimacsFile file;
  int declaredVars = -1;
  long declaredClauses = -1;
  Clause current;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;
    if (tok == "c") {
      std::string kind;
      if (ls >> kind && kind == "proj") {
        std::vector<Var> proj;
        long v;
        while (ls >> v) {
          PRESAT_CHECK(v >= 1) << "projection vars are 1-based positive ints";
          proj.push_back(static_cast<Var>(v - 1));
        }
        file.projection = std::move(proj);
      }
      continue;
    }
    if (tok == "p") {
      std::string fmt;
      PRESAT_CHECK((ls >> fmt) && fmt == "cnf") << "expected 'p cnf' header";
      PRESAT_CHECK(ls >> declaredVars >> declaredClauses) << "bad 'p cnf' header";
      file.cnf = Cnf(declaredVars);
      continue;
    }
    // Clause data: integers terminated by 0 (clauses may span lines).
    ls.clear();
    ls.seekg(0);
    long v;
    while (ls >> v) {
      if (v == 0) {
        PRESAT_CHECK(declaredVars >= 0) << "clause before 'p cnf' header";
        file.cnf.addClause(current);
        current.clear();
      } else {
        Lit l = Lit::fromDimacs(static_cast<int32_t>(v));
        PRESAT_CHECK(l.var() < declaredVars)
            << "literal " << v << " exceeds declared variable count " << declaredVars;
        current.push_back(l);
      }
    }
  }
  PRESAT_CHECK(current.empty()) << "unterminated clause at end of DIMACS input";
  if (declaredClauses >= 0) {
    PRESAT_CHECK(static_cast<long>(file.cnf.numClauses()) == declaredClauses)
        << "clause count mismatch: declared " << declaredClauses << ", found "
        << file.cnf.numClauses();
  }
  if (file.projection) {
    for (Var v : *file.projection)
      PRESAT_CHECK(v < file.cnf.numVars()) << "projection var out of range";
  }
  return file;
}

DimacsFile parseDimacsString(const std::string& text) {
  std::istringstream in(text);
  return parseDimacs(in);
}

DimacsFile parseDimacsFile(const std::string& path) {
  std::ifstream in(path);
  PRESAT_CHECK(in.good()) << "cannot open DIMACS file: " << path;
  return parseDimacs(in);
}

void writeDimacs(std::ostream& out, const Cnf& cnf, const std::vector<Var>* projection) {
  if (projection) {
    out << "c proj";
    for (Var v : *projection) out << " " << (v + 1);
    out << "\n";
  }
  out << "p cnf " << cnf.numVars() << " " << cnf.numClauses() << "\n";
  for (const Clause& c : cnf.clauses()) {
    for (Lit l : c) out << l.toDimacs() << " ";
    out << "0\n";
  }
}

std::string toDimacsString(const Cnf& cnf, const std::vector<Var>* projection) {
  std::ostringstream out;
  writeDimacs(out, cnf, projection);
  return out.str();
}

}  // namespace presat
