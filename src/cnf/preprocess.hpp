// One-shot CNF preprocessing: pure-literal elimination, subsumption, and
// dense variable remapping.
//
// Run once per parsed circuit, before any (possibly parallel, possibly
// pooled) enumeration over the formula. The pass computes a reduced CNF over
// a dense internal variable space plus the two maps between the spaces, so
// every consumer downstream of the solver — models, cubes, audits, the BDD
// oracle — keeps seeing ORIGINAL variable numbering while the CDCL inner
// loop runs on the smaller remapped formula.
//
// Contract (the reason this is safe under incremental clause addition):
//   - `frozen` variables are never eliminated and are always present in the
//     internal space, even when no remaining clause mentions them. Callers
//     freeze every variable that later clauses, projections, assumptions, or
//     lifters may mention — projection scopes at the engine level; state and
//     next-state-root variables at the circuit level (target cubes add
//     clauses over next-state roots and fresh selector variables).
//   - Pure-literal elimination only fires on NON-frozen variables, so the
//     model sets of the original and reduced formulas project identically
//     onto any subset of frozen variables, and that equivalence survives
//     adding clauses over frozen ∪ fresh variables to both sides.
//   - The remap is monotone in the original variable order, so translating a
//     projection vector elementwise preserves its index space: cubes emitted
//     in the projected index space need no translation at all.
#pragma once

#include <cstdint>
#include <vector>

#include "base/check.hpp"
#include "base/types.hpp"
#include "cnf/cnf.hpp"

namespace presat {

class Governor;

struct PreprocessStats {
  uint64_t varsBefore = 0;
  uint64_t varsAfter = 0;
  uint64_t clausesBefore = 0;
  uint64_t clausesAfter = 0;
  uint64_t pureLiterals = 0;      // non-frozen vars eliminated as pure
  uint64_t subsumedClauses = 0;   // clauses removed by subsumption (incl. duplicates)
  uint64_t tautologies = 0;       // clauses dropped as tautological
  uint64_t identityFallback = 0;  // 1 iff the pass degraded to the identity map
};

// A reduced CNF plus the maps between the original and internal spaces.
struct PreprocessedCnf {
  Cnf cnf;  // internal (dense) variable space

  // toInternal[origVar] = internal var, or kNullVar if eliminated.
  std::vector<Var> toInternal;
  // toOriginal[internalVar] = original var (total, strictly increasing).
  std::vector<Var> toOriginal;

  // Original-space literals fixed by pure-literal elimination. Any internal
  // model extends to an original model by adding exactly these.
  LitVec forcedLits;

  PreprocessStats stats;

  Var internalVar(Var orig) const {
    PRESAT_CHECK(orig >= 0 && static_cast<size_t>(orig) < toInternal.size())
        << "internalVar(x" << orig << ") out of range";
    return toInternal[static_cast<size_t>(orig)];
  }

  // Translates an original-space literal; the variable must be mapped
  // (always true for frozen variables).
  Lit internalLit(Lit orig) const {
    Var v = internalVar(orig.var());
    PRESAT_CHECK(v != kNullVar) << "internalLit(" << toString(orig)
                                << "): variable was eliminated (not frozen?)";
    return mkLit(v, orig.sign());
  }

  // Lifts an internal model (or partial model) back to the original space:
  // mapped variables copy their internal value verbatim (l_Undef stays
  // l_Undef — projected witnesses survive the round trip), eliminated pure
  // variables take their forced polarity, and variables that never occurred
  // anywhere default to l_False.
  std::vector<lbool> originalModel(const std::vector<lbool>& internalModel) const;
};

// Preprocesses `cnf`, never eliminating a variable in `frozen`. `governor`
// is only used by the cnf.preprocess fault-injection site (may be null).
// Deterministic: output depends only on (cnf, frozen).
PreprocessedCnf preprocessCnf(const Cnf& cnf, const std::vector<Var>& frozen,
                              Governor* governor = nullptr);

class Metrics;

// Serializes the pass stats under the canonical preprocess.* counter names
// (registered in tools/metrics_registry.json).
void exportPreprocessMetrics(const PreprocessStats& stats, Metrics& m);

}  // namespace presat
