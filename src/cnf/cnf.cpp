#include "cnf/cnf.hpp"

#include <algorithm>

#include "base/log.hpp"

namespace presat {

size_t Cnf::numLiterals() const {
  size_t n = 0;
  for (const Clause& c : clauses_) n += c.size();
  return n;
}

void Cnf::addClause(Clause clause) {
  for (Lit l : clause) {
    PRESAT_CHECK(l.var() >= 0 && l.var() < numVars_)
        << "clause references unknown variable x" << l.var() << " (numVars=" << numVars_ << ")";
  }
  clauses_.push_back(std::move(clause));
}

bool Cnf::evaluate(const std::vector<bool>& values) const {
  PRESAT_CHECK(values.size() >= static_cast<size_t>(numVars_));
  for (const Clause& c : clauses_) {
    bool sat = false;
    for (Lit l : c) {
      if (values[static_cast<size_t>(l.var())] != l.sign()) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

lbool Cnf::evaluate(const std::vector<lbool>& values) const {
  PRESAT_CHECK(values.size() >= static_cast<size_t>(numVars_));
  bool anyUndef = false;
  for (const Clause& c : clauses_) {
    bool sat = false;
    bool clauseUndef = false;
    for (Lit l : c) {
      lbool v = values[static_cast<size_t>(l.var())];
      if (v.isUndef()) {
        clauseUndef = true;
      } else if (v.isTrue() != l.sign()) {
        sat = true;
        break;
      }
    }
    if (!sat) {
      if (!clauseUndef) return l_False;
      anyUndef = true;
    }
  }
  return anyUndef ? l_Undef : l_True;
}

void Cnf::append(const Cnf& other) {
  PRESAT_CHECK(other.numVars_ <= numVars_)
      << "append requires the other formula's variables to exist here";
  clauses_.insert(clauses_.end(), other.clauses_.begin(), other.clauses_.end());
}

}  // namespace presat
