// DIMACS CNF reader/writer, plus a projection-scope extension.
//
// The reader accepts the standard `p cnf <vars> <clauses>` format with
// comment lines. A `c proj v1 v2 ...` comment line (1-based DIMACS variable
// numbers) optionally declares the projection scope used by the all-SAT
// examples; it is surfaced through DimacsFile::projection.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "cnf/cnf.hpp"

namespace presat {

struct DimacsFile {
  Cnf cnf;
  // Declared projection scope (0-based vars), if a `c proj` line was present.
  std::optional<std::vector<Var>> projection;
};

// Parses DIMACS from a stream / string / file. PRESAT_CHECK-fails on
// malformed input (this library treats inputs as trusted test artifacts).
DimacsFile parseDimacs(std::istream& in);
DimacsFile parseDimacsString(const std::string& text);
DimacsFile parseDimacsFile(const std::string& path);

void writeDimacs(std::ostream& out, const Cnf& cnf,
                 const std::vector<Var>* projection = nullptr);
std::string toDimacsString(const Cnf& cnf,
                           const std::vector<Var>* projection = nullptr);

}  // namespace presat
