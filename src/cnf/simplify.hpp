// Lightweight preprocessing: duplicate-literal and tautology removal plus
// unit propagation to fixpoint. Used to shrink encoder output before the
// baselines re-solve it thousands of times, and as a reference propagator in
// tests.
#pragma once

#include <optional>
#include <vector>

#include "cnf/cnf.hpp"

namespace presat {

struct SimplifyResult {
  bool unsat = false;          // formula is trivially UNSAT
  Cnf simplified;              // same variable space as the input
  std::vector<lbool> forced;   // values forced by unit propagation, per var
};

SimplifyResult simplify(const Cnf& input);

// Propagates units only, returning per-variable forced values, or nullopt on
// an immediate conflict.
std::optional<std::vector<lbool>> propagateUnits(const Cnf& input);

}  // namespace presat
