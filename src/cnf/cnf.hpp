// CNF formula container.
//
// This is the interchange format between the circuit encoder, the CDCL
// solver, and the all-SAT baselines. It is a plain clause list with a
// variable count; solver-internal clause storage is separate (see
// sat/solver.hpp) so the formula stays cheap to copy and inspect.
#pragma once

#include <cstdint>
#include <vector>

#include "base/types.hpp"

namespace presat {

using Clause = LitVec;

class Cnf {
 public:
  Cnf() = default;
  explicit Cnf(int numVars) : numVars_(numVars) {}

  int numVars() const { return numVars_; }
  size_t numClauses() const { return clauses_.size(); }
  size_t numLiterals() const;

  // Creates a fresh variable and returns it.
  Var newVar() { return numVars_++; }
  // Grows the variable count to cover `v`.
  void ensureVar(Var v) {
    if (v >= numVars_) numVars_ = v + 1;
  }

  // Adds a clause; literals must reference existing variables.
  void addClause(Clause clause);
  void addUnit(Lit a) { addClause({a}); }
  void addBinary(Lit a, Lit b) { addClause({a, b}); }
  void addTernary(Lit a, Lit b, Lit c) { addClause({a, b, c}); }

  const std::vector<Clause>& clauses() const { return clauses_; }
  const Clause& clause(size_t i) const { return clauses_[i]; }

  // Evaluates the formula under a complete assignment (values[v] for var v).
  bool evaluate(const std::vector<bool>& values) const;
  // Three-valued evaluation under a partial assignment.
  lbool evaluate(const std::vector<lbool>& values) const;

  void append(const Cnf& other);  // conjunction; variable spaces must match

 private:
  int numVars_ = 0;
  std::vector<Clause> clauses_;
};

}  // namespace presat
