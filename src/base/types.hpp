// Core literal/variable/truth-value types shared by the CNF and SAT layers.
//
// Encoding follows the MiniSat convention: a variable is a dense non-negative
// integer index; a literal packs (var << 1) | sign, where sign==1 means the
// negated literal. This keeps literal-indexed arrays dense and branch-free.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

namespace presat {

using Var = int32_t;

constexpr Var kNullVar = -1;

// A propositional literal. Value-type, 4 bytes, totally ordered.
class Lit {
 public:
  constexpr Lit() : code_(-2) {}
  constexpr Lit(Var v, bool negated) : code_((v << 1) | (negated ? 1 : 0)) {}

  static constexpr Lit fromCode(int32_t code) {
    Lit l;
    l.code_ = code;
    return l;
  }
  // DIMACS-style integer: +v / -v with v >= 1.
  static constexpr Lit fromDimacs(int32_t d) {
    return Lit(static_cast<Var>(std::abs(d)) - 1, d < 0);
  }

  constexpr Var var() const { return code_ >> 1; }
  constexpr bool sign() const { return (code_ & 1) != 0; }  // true = negated
  constexpr int32_t code() const { return code_; }
  constexpr int32_t toDimacs() const { return sign() ? -(var() + 1) : (var() + 1); }

  constexpr Lit operator~() const { return fromCode(code_ ^ 1); }
  // Literal with this var and the given polarity applied on top: if b is
  // false, flips the literal.
  constexpr Lit operator^(bool b) const { return fromCode(code_ ^ (b ? 0 : 1)); }

  constexpr bool operator==(const Lit& o) const { return code_ == o.code_; }
  constexpr bool operator!=(const Lit& o) const { return code_ != o.code_; }
  constexpr bool operator<(const Lit& o) const { return code_ < o.code_; }

 private:
  int32_t code_;
};

constexpr Lit kUndefLit = Lit::fromCode(-2);

inline Lit mkLit(Var v, bool negated = false) { return Lit(v, negated); }

// Three-valued logic constant: true / false / undefined.
class lbool {
 public:
  constexpr lbool() : v_(2) {}
  explicit constexpr lbool(uint8_t raw) : v_(raw) {}
  constexpr lbool(bool b) : v_(b ? 0 : 1) {}

  constexpr bool isTrue() const { return v_ == 0; }
  constexpr bool isFalse() const { return v_ == 1; }
  constexpr bool isUndef() const { return v_ >= 2; }

  constexpr bool operator==(const lbool& o) const {
    return (isUndef() && o.isUndef()) || v_ == o.v_;
  }
  constexpr bool operator!=(const lbool& o) const { return !(*this == o); }

  // XOR with a boolean: flips true<->false, leaves undef alone.
  constexpr lbool operator^(bool b) const {
    return isUndef() ? *this : lbool(static_cast<uint8_t>(v_ ^ (b ? 1 : 0)));
  }

  constexpr uint8_t raw() const { return v_; }

 private:
  uint8_t v_;
};

constexpr lbool l_True{static_cast<uint8_t>(0)};
constexpr lbool l_False{static_cast<uint8_t>(1)};
constexpr lbool l_Undef{static_cast<uint8_t>(2)};

// A cube or clause as a plain literal vector (no invariant beyond "literals").
using LitVec = std::vector<Lit>;

std::string toString(Lit l);
std::string toString(const LitVec& lits);

}  // namespace presat

template <>
struct std::hash<presat::Lit> {
  size_t operator()(const presat::Lit& l) const noexcept {
    return std::hash<int32_t>()(l.code());
  }
};
