#include "base/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace presat {

namespace {

// Bit width of v: 0 for 0, otherwise floor(log2(v)) + 1.
int bucketIndex(uint64_t v) {
  int w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return std::min(w, Histogram::kBuckets - 1);
}

std::string escapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string formatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// Emits pretty or compact JSON depending on whether indent > 0.
class JsonOut {
 public:
  explicit JsonOut(int indent) : indent_(std::max(indent, 0)) {}

  void open(char brace) {
    out_ << brace;
    ++depth_;
    first_ = true;
  }
  void close(char brace) {
    --depth_;
    if (!first_) newline(depth_);
    out_ << brace;
    first_ = false;
  }
  void key(const std::string& name) {
    comma();
    newline(depth_);
    out_ << '"' << escapeJson(name) << "\":";
    if (indent_ > 0) out_ << ' ';
  }
  void value(const std::string& raw) { out_ << raw; }
  void element(const std::string& raw) {
    comma();
    newline(depth_);
    out_ << raw;
  }
  std::string str() const { return out_.str(); }

 private:
  void comma() {
    if (!first_) out_ << ',';
    first_ = false;
  }
  void newline(int depth) {
    if (indent_ == 0) return;
    out_ << '\n' << std::string(static_cast<size_t>(depth * indent_), ' ');
  }

  std::ostringstream out_;
  int indent_;
  int depth_ = 0;
  bool first_ = true;
};

}  // namespace

void Histogram::record(uint64_t value) {
  ++buckets_[bucketIndex(value)];
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

uint64_t Metrics::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Metrics::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

std::string Metrics::label(const std::string& name) const {
  auto it = labels_.find(name);
  return it == labels_.end() ? std::string() : it->second;
}

const Histogram* Metrics::findHistogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void Metrics::merge(const Metrics& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, v] : other.gauges_) gauges_[name] += v;
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
  for (const auto& [name, v] : other.labels_) labels_.emplace(name, v);
}

std::string Metrics::toJson(int indent) const {
  JsonOut out(indent);
  out.open('{');
  if (!labels_.empty()) {
    out.key("labels");
    out.open('{');
    for (const auto& [name, v] : labels_) {
      out.key(name);
      out.value("\"" + escapeJson(v) + "\"");
    }
    out.close('}');
  }
  if (!counters_.empty()) {
    out.key("counters");
    out.open('{');
    for (const auto& [name, v] : counters_) {
      out.key(name);
      out.value(std::to_string(v));
    }
    out.close('}');
  }
  if (!gauges_.empty()) {
    out.key("gauges");
    out.open('{');
    for (const auto& [name, v] : gauges_) {
      out.key(name);
      out.value(formatDouble(v));
    }
    out.close('}');
  }
  if (!histograms_.empty()) {
    out.key("histograms");
    out.open('{');
    for (const auto& [name, h] : histograms_) {
      out.key(name);
      out.open('{');
      out.key("count");
      out.value(std::to_string(h.count()));
      out.key("sum");
      out.value(std::to_string(h.sum()));
      out.key("max");
      out.value(std::to_string(h.max()));
      out.key("mean");
      out.value(formatDouble(h.mean()));
      out.key("buckets");
      out.open('[');
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        if (h.bucket(i) == 0) continue;
        // Bucket i holds values of bit width i: upper bound 2^i - 1.
        uint64_t le = i == 0 ? 0 : (i >= 64 ? ~0ull : (1ull << i) - 1);
        out.element("{\"le\": " + std::to_string(le) + ", \"n\": " + std::to_string(h.bucket(i)) +
                    "}");
      }
      out.close(']');
      out.close('}');
    }
    out.close('}');
  }
  out.close('}');
  return out.str();
}

}  // namespace presat
