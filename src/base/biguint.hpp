// Arbitrary-precision unsigned integer.
//
// Solution counts in all-solutions SAT and BDD satisfy-counts are 2^n-scale
// quantities that overflow uint64 on circuits with more than 64 projection
// variables, so exact counting needs a bignum. Only the operations those
// algorithms use are provided: addition, subtraction (with underflow check),
// shifts (multiplication/division by powers of two), small multiplication,
// comparison, and decimal conversion.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace presat {

class BigUint {
 public:
  BigUint() = default;
  BigUint(uint64_t value);  // NOLINT(google-explicit-constructor) — numeric literal ergonomics

  // 2^exponent.
  static BigUint powerOfTwo(uint32_t exponent);
  static BigUint fromDecimal(const std::string& digits);

  bool isZero() const { return limbs_.empty(); }
  // Number of significant bits; 0 for zero.
  uint32_t bitLength() const;

  BigUint& operator+=(const BigUint& other);
  BigUint& operator-=(const BigUint& other);  // checks other <= *this
  BigUint& operator<<=(uint32_t bits);
  BigUint& operator>>=(uint32_t bits);
  BigUint& mulSmall(uint64_t factor);

  friend BigUint operator+(BigUint a, const BigUint& b) { return a += b; }
  friend BigUint operator-(BigUint a, const BigUint& b) { return a -= b; }
  friend BigUint operator<<(BigUint a, uint32_t bits) { return a <<= bits; }
  friend BigUint operator>>(BigUint a, uint32_t bits) { return a >>= bits; }

  // -1 / 0 / +1 ordering of *this vs other.
  int compare(const BigUint& other) const;
  bool operator==(const BigUint& o) const { return compare(o) == 0; }
  bool operator!=(const BigUint& o) const { return compare(o) != 0; }
  bool operator<(const BigUint& o) const { return compare(o) < 0; }
  bool operator<=(const BigUint& o) const { return compare(o) <= 0; }
  bool operator>(const BigUint& o) const { return compare(o) > 0; }
  bool operator>=(const BigUint& o) const { return compare(o) >= 0; }

  // Value as uint64; checks that it fits.
  uint64_t toU64() const;
  bool fitsU64() const { return limbs_.size() <= 1; }
  double toDouble() const;

  std::string toDecimal() const;

 private:
  void normalize();

  // Little-endian 64-bit limbs; empty vector represents zero, and the most
  // significant limb is always non-zero (canonical form).
  std::vector<uint64_t> limbs_;
};

}  // namespace presat
