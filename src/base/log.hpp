// Minimal assertion / logging support.
//
// PRESAT_CHECK is an always-on invariant check (also in release builds): a
// violated invariant in a solver silently produces wrong models, which is far
// worse than the cost of the branch. PRESAT_DCHECK compiles out in NDEBUG
// builds and is used on hot paths.
#pragma once

#include <sstream>
#include <string>

namespace presat {

[[noreturn]] void checkFailed(const char* file, int line, const char* expr,
                              const std::string& message);

namespace detail {

// Accumulates the streamed message for a failing check, then aborts.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessage() { checkFailed(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace presat

#define PRESAT_CHECK(expr)                                       \
  if (expr) {                                                    \
  } else                                                         \
    ::presat::detail::CheckMessage(__FILE__, __LINE__, #expr)

#ifdef NDEBUG
#define PRESAT_DCHECK(expr) \
  if (true) {               \
  } else                    \
    ::presat::detail::CheckMessage(__FILE__, __LINE__, #expr)
#else
#define PRESAT_DCHECK(expr) PRESAT_CHECK(expr)
#endif
