// Diagnostic string helpers for the core literal types.
//
// The invariant-check macros (PRESAT_CHECK / PRESAT_DCHECK and the audit
// gating) live in base/check.hpp; this header re-exports them so existing
// includes keep working, and adds the toString formatting used in check
// messages.
#pragma once

#include <string>

#include "base/check.hpp"
#include "base/types.hpp"

namespace presat {

std::string toString(Lit l);
std::string toString(const LitVec& lits);

}  // namespace presat
