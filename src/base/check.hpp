// Invariant checking: the PRESAT_CHECK macro family and the audit levels.
//
// This header is the single home of runtime invariant checks — the repo-rule
// linter (tools/lint.py) rejects naked `assert` everywhere else.
//
//  * PRESAT_CHECK(expr)  — always on, also in release builds: a violated
//    invariant in a solver silently produces wrong models, which is far worse
//    than the cost of the branch.
//  * PRESAT_DCHECK(expr) — compiles out in NDEBUG builds; used on hot paths.
//  * PRESAT_AUDIT_CHEAP(stmt) / PRESAT_AUDIT_FULL(stmt) — run `stmt` only
//    when the compiled audit level (the PRESAT_AUDIT CMake option) admits it.
//    These gate the deep structural validators in src/check/: `cheap` keeps
//    linear-time structure scans, `full` adds the semantic cross-checks
//    (BDD count agreement, per-cube SAT probes) used by the sanitize CI lane
//    and the fuzz-style tests.
#pragma once

#include <sstream>
#include <string>

// 0 = off, 1 = cheap, 2 = full. Set by the PRESAT_AUDIT CMake option; the
// default keeps cheap audits on so plain builds still self-check structure.
#ifndef PRESAT_AUDIT_LEVEL
#define PRESAT_AUDIT_LEVEL 1
#endif

namespace presat {

enum class AuditLevel : int { kOff = 0, kCheap = 1, kFull = 2 };

// The level this binary was compiled with.
constexpr AuditLevel kAuditLevel = static_cast<AuditLevel>(PRESAT_AUDIT_LEVEL);

constexpr bool auditEnabled(AuditLevel level) {
  return PRESAT_AUDIT_LEVEL >= static_cast<int>(level);
}

const char* auditLevelName(AuditLevel level);

[[noreturn]] void checkFailed(const char* file, int line, const char* expr,
                              const std::string& message);

namespace detail {

// Accumulates the streamed message for a failing check, then aborts.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessage() { checkFailed(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace presat

#define PRESAT_CHECK(expr)                                       \
  if (expr) {                                                    \
  } else                                                         \
    ::presat::detail::CheckMessage(__FILE__, __LINE__, #expr)

#ifdef NDEBUG
#define PRESAT_DCHECK(expr) \
  if (true) {               \
  } else                    \
    ::presat::detail::CheckMessage(__FILE__, __LINE__, #expr)
#else
#define PRESAT_DCHECK(expr) PRESAT_CHECK(expr)
#endif

#if PRESAT_AUDIT_LEVEL >= 1
#define PRESAT_AUDIT_CHEAP(stmt) \
  do {                           \
    stmt;                        \
  } while (0)
#else
#define PRESAT_AUDIT_CHEAP(stmt) \
  do {                           \
  } while (0)
#endif

#if PRESAT_AUDIT_LEVEL >= 2
#define PRESAT_AUDIT_FULL(stmt) \
  do {                          \
    stmt;                       \
  } while (0)
#else
#define PRESAT_AUDIT_FULL(stmt) \
  do {                          \
  } while (0)
#endif
