#include "base/dyadic.hpp"

#include <cmath>

#include "base/log.hpp"

namespace presat {

void Dyadic::normalize() {
  if (num_.isZero()) {
    exp_ = 0;
    return;
  }
  // Keep the numerator odd (or the exponent zero) so equality is structural.
  while (exp_ > 0) {
    BigUint halved = num_;
    halved >>= 1;
    BigUint doubled = halved;
    doubled <<= 1;
    if (doubled != num_) break;  // numerator is odd
    num_ = halved;
    --exp_;
  }
}

Dyadic& Dyadic::operator+=(const Dyadic& other) {
  if (other.isZero()) return *this;
  if (isZero()) {
    *this = other;
    return *this;
  }
  uint32_t commonExp = std::max(exp_, other.exp_);
  BigUint a = num_;
  a <<= (commonExp - exp_);
  BigUint b = other.num_;
  b <<= (commonExp - other.exp_);
  num_ = a + b;
  exp_ = commonExp;
  normalize();
  return *this;
}

BigUint Dyadic::scaleByPow2(uint32_t power) const {
  if (num_.isZero()) return BigUint(0);
  PRESAT_CHECK(power >= exp_) << "inexact dyadic scaling: exponent " << exp_
                              << " exceeds power " << power;
  BigUint r = num_;
  r <<= (power - exp_);
  return r;
}

double Dyadic::toDouble() const {
  return num_.toDouble() * std::ldexp(1.0, -static_cast<int>(exp_));
}

std::string Dyadic::toString() const {
  return num_.toDecimal() + "/2^" + std::to_string(exp_);
}

}  // namespace presat
