#include "base/log.hpp"

#include <cstdio>
#include <cstdlib>

#include "base/types.hpp"

namespace presat {

void checkFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "[presat] CHECK failed at %s:%d: %s", file, line, expr);
  if (!message.empty()) std::fprintf(stderr, " — %s", message.c_str());
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

std::string toString(Lit l) {
  if (l == kUndefLit) return "<undef>";
  return (l.sign() ? "~x" : "x") + std::to_string(l.var());
}

std::string toString(const LitVec& lits) {
  std::string out = "(";
  for (size_t i = 0; i < lits.size(); ++i) {
    if (i > 0) out += " ";
    out += toString(lits[i]);
  }
  out += ")";
  return out;
}

}  // namespace presat
