#include "base/log.hpp"

#include "base/types.hpp"

namespace presat {

std::string toString(Lit l) {
  if (l == kUndefLit) return "<undef>";
  return (l.sign() ? "~x" : "x") + std::to_string(l.var());
}

std::string toString(const LitVec& lits) {
  std::string out = "(";
  for (size_t i = 0; i < lits.size(); ++i) {
    if (i > 0) out += " ";
    out += toString(lits[i]);
  }
  out += ")";
  return out;
}

}  // namespace presat
