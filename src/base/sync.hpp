// Annotated synchronization primitives.
//
// libstdc++'s std::mutex carries no capability attributes, so code locking
// it directly is invisible to clang's -Wthread-safety analysis. Mutex wraps
// it as a CAPABILITY so GUARDED_BY / REQUIRES / EXCLUDES declarations
// elsewhere in the repo are actually checked, and MutexLock is the
// SCOPED_CAPABILITY guard the analysis tracks through a scope. Both are
// zero-overhead: every method is an inline forward to the std:: primitive.
//
// Repo rule (tools/presat_analyze.py, rule sync-raw-mutex): concurrency code
// under src/ declares presat::Mutex members, not std::mutex — the only
// std::mutex in the library lives here, inside the annotated wrapper.
#pragma once

#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.hpp"

namespace presat {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // Trusted leaves: the attribute tells callers what happens, and the body —
  // an opaque std::mutex call the analysis cannot model — is exempted.
  void lock() ACQUIRE() NO_THREAD_SAFETY_ANALYSIS { m_.lock(); }
  void unlock() RELEASE() NO_THREAD_SAFETY_ANALYSIS { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) NO_THREAD_SAFETY_ANALYSIS { return m_.try_lock(); }

 private:
  // presat-analyze: lockfree(the annotated capability wrapper itself; this is
  // the one permitted raw std::mutex in src/)
  std::mutex m_;
};

// RAII guard, the std::lock_guard shape the thread-safety analysis can see.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable usable with the annotated Mutex. Built on
// std::condition_variable_any (Mutex is a BasicLockable), so waiters park on
// the same capability the analysis tracks. wait() REQUIRES the mutex: the
// analysis cannot model the internal release/reacquire, so the body is
// exempted, but every caller is still proven to hold the lock around the
// wait — exactly the invariant that matters for the predicate re-check.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS { cv_.wait(mu); }

  template <typename Pred>
  void wait(Mutex& mu, Pred pred) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu, pred);
  }

  void notifyOne() { cv_.notify_one(); }
  void notifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace presat
