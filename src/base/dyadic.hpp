// Exact dyadic rational q = numerator / 2^exponent.
//
// Solution-graph counting works with *densities*: the fraction of the
// projection space covered by a sub-DAG. Densities of disjoint branches add,
// and assigning one more projection variable halves the density. All values
// are therefore dyadic rationals, which this class represents exactly.
#pragma once

#include <cstdint>
#include <string>

#include "base/biguint.hpp"

namespace presat {

class Dyadic {
 public:
  Dyadic() = default;  // zero
  explicit Dyadic(BigUint numerator, uint32_t exponent = 0)
      : num_(std::move(numerator)), exp_(exponent) {
    normalize();
  }

  static Dyadic zero() { return Dyadic(); }
  static Dyadic one() { return Dyadic(BigUint(1)); }
  // 1 / 2^k.
  static Dyadic half(uint32_t k) { return Dyadic(BigUint(1), k); }

  bool isZero() const { return num_.isZero(); }

  Dyadic& operator+=(const Dyadic& other);
  friend Dyadic operator+(Dyadic a, const Dyadic& b) { return a += b; }

  // Divide by 2^k (density after assigning k more projection variables).
  Dyadic& divPow2(uint32_t k) {
    if (!num_.isZero()) exp_ += k;
    return *this;
  }

  bool operator==(const Dyadic& o) const { return exp_ == o.exp_ && num_ == o.num_; }
  bool operator!=(const Dyadic& o) const { return !(*this == o); }

  // this * 2^power, checked exact (used as density * |projection space|).
  BigUint scaleByPow2(uint32_t power) const;

  double toDouble() const;
  std::string toString() const;

  const BigUint& numerator() const { return num_; }
  uint32_t exponent() const { return exp_; }

 private:
  void normalize();

  BigUint num_;
  uint32_t exp_ = 0;
};

}  // namespace presat
