// Wall-clock stopwatch used by benches and engine statistics.
#pragma once

#include <chrono>

namespace presat {

class Timer {
 public:
  Timer() { reset(); }

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace presat
