#include "base/biguint.hpp"

#include <algorithm>

#include "base/log.hpp"

namespace presat {

namespace {

// 64x64 -> 128 multiply helper using the compiler's native 128-bit type.
inline void mul64(uint64_t a, uint64_t b, uint64_t& lo, uint64_t& hi) {
  unsigned __int128 p = static_cast<unsigned __int128>(a) * b;
  lo = static_cast<uint64_t>(p);
  hi = static_cast<uint64_t>(p >> 64);
}

}  // namespace

BigUint::BigUint(uint64_t value) {
  if (value != 0) limbs_.push_back(value);
}

BigUint BigUint::powerOfTwo(uint32_t exponent) {
  BigUint r;
  r.limbs_.assign(exponent / 64 + 1, 0);
  r.limbs_.back() = 1ull << (exponent % 64);
  return r;
}

BigUint BigUint::fromDecimal(const std::string& digits) {
  BigUint r;
  PRESAT_CHECK(!digits.empty()) << "empty decimal string";
  for (char c : digits) {
    PRESAT_CHECK(c >= '0' && c <= '9') << "bad decimal digit '" << c << "'";
    r.mulSmall(10);
    r += BigUint(static_cast<uint64_t>(c - '0'));
  }
  return r;
}

uint32_t BigUint::bitLength() const {
  if (limbs_.empty()) return 0;
  uint64_t top = limbs_.back();
  uint32_t bits = static_cast<uint32_t>(64 - __builtin_clzll(top));
  return static_cast<uint32_t>((limbs_.size() - 1) * 64) + bits;
}

void BigUint::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint& BigUint::operator+=(const BigUint& other) {
  if (limbs_.size() < other.limbs_.size()) limbs_.resize(other.limbs_.size(), 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t add = i < other.limbs_.size() ? other.limbs_[i] : 0;
    uint64_t sum = limbs_[i] + add;
    uint64_t carried = sum + carry;
    carry = (sum < add) || (carried < sum) ? 1 : 0;
    limbs_[i] = carried;
    if (add == 0 && carry == 0 && i >= other.limbs_.size()) break;
  }
  if (carry) limbs_.push_back(carry);
  return *this;
}

BigUint& BigUint::operator-=(const BigUint& other) {
  PRESAT_CHECK(other <= *this) << "BigUint subtraction underflow";
  uint64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t sub = i < other.limbs_.size() ? other.limbs_[i] : 0;
    uint64_t cur = limbs_[i];
    uint64_t res = cur - sub - borrow;
    borrow = (cur < sub || (cur == sub && borrow)) ? 1 : 0;
    limbs_[i] = res;
    if (sub == 0 && borrow == 0 && i >= other.limbs_.size()) break;
  }
  PRESAT_CHECK(borrow == 0);
  normalize();
  return *this;
}

BigUint& BigUint::operator<<=(uint32_t bits) {
  if (isZero() || bits == 0) return *this;
  uint32_t limbShift = bits / 64;
  uint32_t bitShift = bits % 64;
  size_t oldSize = limbs_.size();
  limbs_.resize(oldSize + limbShift + 1, 0);
  for (size_t i = oldSize; i-- > 0;) {
    uint64_t v = limbs_[i];
    limbs_[i] = 0;
    if (bitShift == 0) {
      limbs_[i + limbShift] |= v;
    } else {
      limbs_[i + limbShift] |= v << bitShift;
      limbs_[i + limbShift + 1] |= v >> (64 - bitShift);
    }
  }
  normalize();
  return *this;
}

BigUint& BigUint::operator>>=(uint32_t bits) {
  if (isZero() || bits == 0) return *this;
  uint32_t limbShift = bits / 64;
  uint32_t bitShift = bits % 64;
  if (limbShift >= limbs_.size()) {
    limbs_.clear();
    return *this;
  }
  limbs_.erase(limbs_.begin(), limbs_.begin() + limbShift);
  if (bitShift != 0) {
    for (size_t i = 0; i < limbs_.size(); ++i) {
      uint64_t hi = (i + 1 < limbs_.size()) ? limbs_[i + 1] : 0;
      limbs_[i] = (limbs_[i] >> bitShift) | (hi << (64 - bitShift));
    }
  }
  normalize();
  return *this;
}

BigUint& BigUint::mulSmall(uint64_t factor) {
  if (factor == 0 || isZero()) {
    limbs_.clear();
    return *this;
  }
  uint64_t carry = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t lo, hi;
    mul64(limbs_[i], factor, lo, hi);
    uint64_t sum = lo + carry;
    if (sum < lo) ++hi;
    limbs_[i] = sum;
    carry = hi;
  }
  if (carry) limbs_.push_back(carry);
  return *this;
}

int BigUint::compare(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size())
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

uint64_t BigUint::toU64() const {
  PRESAT_CHECK(fitsU64()) << "BigUint does not fit in uint64";
  return limbs_.empty() ? 0 : limbs_[0];
}

double BigUint::toDouble() const {
  double r = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) r = r * 18446744073709551616.0 + static_cast<double>(limbs_[i]);
  return r;
}

std::string BigUint::toDecimal() const {
  if (isZero()) return "0";
  std::vector<uint64_t> work = limbs_;
  std::string digits;
  while (!work.empty()) {
    // Divide `work` by 10^9 in place; remainder becomes the next digit group.
    uint64_t rem = 0;
    for (size_t i = work.size(); i-- > 0;) {
      unsigned __int128 cur = (static_cast<unsigned __int128>(rem) << 64) | work[i];
      work[i] = static_cast<uint64_t>(cur / 1000000000u);
      rem = static_cast<uint64_t>(cur % 1000000000u);
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  std::reverse(digits.begin(), digits.end());
  return digits;
}

}  // namespace presat
