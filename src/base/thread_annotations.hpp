// Clang thread-safety analysis annotations.
//
// These macros expose the -Wthread-safety capability attributes (see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) and expand to
// nothing on compilers without them (GCC), so annotated code builds
// identically everywhere while clang builds get compile-time checking of the
// locking protocol. The repo's clang builds promote the whole diagnostic
// group to errors (-Werror=thread-safety, see the top-level CMakeLists), so
// an annotation gap is a build break, not a warning to scroll past.
//
// Conventions (enforced by tools/presat_analyze.py, the semantic tier of the
// static-analysis stack — see DESIGN.md "Static analysis"):
//
//  * lock-protected members are declared through base/sync.hpp's
//    CAPABILITY-annotated Mutex and carry GUARDED_BY(thatMutex);
//  * shared members that are deliberately NOT lock-protected (atomics with a
//    documented protocol, owner-thread-confined state read after a join
//    barrier) carry a `// presat-analyze: lockfree(<why>)` waiver comment on
//    or immediately above the declaration;
//  * functions that must be called with a lock held say REQUIRES(mutex),
//    functions that must NOT hold it (because they take it) say
//    EXCLUDES(mutex).
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define PRESAT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PRESAT_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Type annotations: a class that IS a capability (a mutex wrapper), and a
// scoped object that holds one for its lifetime (a lock guard).
#define CAPABILITY(x) PRESAT_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY PRESAT_THREAD_ANNOTATION(scoped_lockable)

// Data annotations: this member may only be touched while holding the named
// capability (PT_ variant: the pointee, for guarded heap objects).
#define GUARDED_BY(x) PRESAT_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) PRESAT_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock-ordering declarations between capabilities (deadlock checking).
#define ACQUIRED_BEFORE(...) PRESAT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) PRESAT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function pre/postconditions on held capabilities.
#define REQUIRES(...) PRESAT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) PRESAT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) PRESAT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) PRESAT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) PRESAT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) PRESAT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) PRESAT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) PRESAT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) PRESAT_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) PRESAT_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for trusted leaves (the std::mutex wrapper bodies in
// base/sync.hpp) whose implementation the analysis cannot see through. Never
// use this to silence a finding in protocol code — that is what the waiver
// comment convention is for, and presat_analyze treats a bare suppression in
// src/ outside base/sync.hpp as a finding in itself.
#define NO_THREAD_SAFETY_ANALYSIS PRESAT_THREAD_ANNOTATION(no_thread_safety_analysis)
