#include "base/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace presat {

const char* auditLevelName(AuditLevel level) {
  switch (level) {
    case AuditLevel::kOff: return "off";
    case AuditLevel::kCheap: return "cheap";
    case AuditLevel::kFull: return "full";
  }
  return "?";
}

void checkFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "[presat] CHECK failed at %s:%d: %s", file, line, expr);
  if (!message.empty()) std::fprintf(stderr, " — %s", message.c_str());
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace presat
