// Deterministic, seedable PRNG (SplitMix64). All randomized components in the
// library (generators, fuzz tests, solver tie-breaking) draw from this so
// every run is reproducible from a single seed.
#pragma once

#include <cstdint>

#include "base/log.hpp"

namespace presat {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be positive.
  uint64_t below(uint64_t bound) {
    PRESAT_DCHECK(bound > 0);
    // Rejection-free modulo is fine here: bounds are tiny relative to 2^64,
    // so the bias is negligible for test/benchmark generation purposes.
    return next() % bound;
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    PRESAT_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

  bool flip() { return (next() & 1) != 0; }

  // True with probability num/den.
  bool chance(uint64_t num, uint64_t den) { return below(den) < num; }

  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  uint64_t state_;
};

}  // namespace presat
