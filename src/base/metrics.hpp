// Engine observability: named counters, gauges, histograms, and string
// labels, with deterministic JSON export.
//
// Every enumeration engine fills a Metrics object alongside its typed stats
// struct, so callers (presat_cli --stats json, the BENCH_*.json trajectory
// files) see one uniform schema regardless of engine:
//
//   {
//     "labels":     { "engine": "success-driven" },
//     "counters":   { "memo.hits": 62, "memo.misses": 3, ... },
//     "gauges":     { "time.seconds": 0.0033 },
//     "histograms": { "frontier.size": { "count": 65, "sum": 130, "max": 4,
//                                        "mean": 2.0,
//                                        "buckets": [ { "le": 1, "n": 12 },
//                                                     { "le": 3, "n": 40 },
//                                                     { "le": 7, "n": 13 } ] } }
//   }
//
// Keys are stored in ordered maps so the JSON is byte-stable across runs —
// required for diffing trajectory files. Empty sections are omitted.
//
// Key discipline (enforced by tools/presat_analyze.py, which also emits the
// checked-in tools/metrics_registry.json index of every registration site):
// literal keys are dotted names matching [a-z][a-z0-9_]*(.[a-z0-9_]+)* —
// lowercase segments joined by dots, e.g. "parallel.task_us" — and a key
// keeps ONE kind (counter, gauge, histogram, or label) across the whole
// repo, because the JSON schema files one section per kind and a collision
// would silently split a key across sections.
//
// Threading: Metrics is thread-COMPATIBLE, not thread-safe — no locks, no
// atomics, by design. Every engine, worker shard, and bench case fills its
// own private instance; cross-thread aggregation happens strictly after the
// WorkerPool join barrier via merge(). presat_analyze's sync rules keep it
// that way: adding a shared mutable Metrics would need a GUARDED_BY-annotated
// mutex or an explicit lockfree waiver to pass the analyze lane.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace presat {

// Power-of-two bucketed histogram for size distributions (frontier sizes,
// cone sizes, clause lengths). Bucket i counts values whose bit width is i,
// i.e. bucket 0 = {0}, bucket 1 = {1}, bucket 2 = {2,3}, bucket 3 = {4..7},
// and so on; values wider than 2^32-1 land in the last bucket.
class Histogram {
 public:
  static constexpr int kBuckets = 33;

  void record(uint64_t value);
  void merge(const Histogram& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_; }
  uint64_t bucket(int i) const { return buckets_[i]; }

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

class Metrics {
 public:
  // Counters: monotonically accumulated unsigned totals.
  void inc(const std::string& name, uint64_t delta = 1) { counters_[name] += delta; }
  void setCounter(const std::string& name, uint64_t value) { counters_[name] = value; }
  uint64_t counter(const std::string& name) const;

  // Gauges: point-in-time doubles (timings, ratios).
  void setGauge(const std::string& name, double value) { gauges_[name] = value; }
  double gauge(const std::string& name) const;

  // Labels: string dimensions identifying the emitter (engine name, bench
  // case). Labels never aggregate; merge() keeps the receiver's value.
  void setLabel(const std::string& name, const std::string& value) { labels_[name] = value; }
  std::string label(const std::string& name) const;

  Histogram& histogram(const std::string& name) { return histograms_[name]; }
  const Histogram* findHistogram(const std::string& name) const;

  // Aggregates `other` into this: counters add, gauges add (total time across
  // sub-queries), histograms merge, and labels keep existing entries.
  void merge(const Metrics& other);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty() && labels_.empty();
  }

  // Deterministic JSON. indent > 0 pretty-prints with that many spaces per
  // level; indent <= 0 emits one compact line (the JSONL trajectory format).
  std::string toJson(int indent = 2) const;

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::string> labels_;
};

}  // namespace presat
