// Forward image computation — the dual of preimage.
//
// Img(F) = { s' | ∃s ∈ F, ∃x. δ(s, x) = s' }: all states reachable from F in
// one transition. Computed either by projected all-SAT (projection scope =
// the next-state function outputs instead of the present-state sources) or
// symbolically. Together with preimage this completes the reachability
// toolbox: forward reachability from reset states, backward reachability
// from bad states, and their intersection for debugging.
#pragma once

#include "allsat/projection.hpp"
#include "preimage/target.hpp"
#include "preimage/transition_system.hpp"

namespace presat {

enum class ImageMethod {
  kMintermBlocking,  // all-SAT over next-state variables, minterm blocking
  kCubeBlocking,     // all-SAT with implicant-shrunk cube blocking
  kBdd,              // relational product over the transition relation
};

const char* imageMethodName(ImageMethod method);

inline constexpr ImageMethod kAllImageMethods[] = {
    ImageMethod::kMintermBlocking,
    ImageMethod::kCubeBlocking,
    ImageMethod::kBdd,
};

struct ImageResult {
  StateSet states;
  BigUint stateCount;
  bool complete = true;
  AllSatStats stats;
  double seconds = 0.0;
};

ImageResult computeImage(const TransitionSystem& system, const StateSet& from,
                         ImageMethod method, const AllSatOptions& options = {});

// Forward reachability to fixpoint or depth bound (frontier-based).
struct ForwardReachResult {
  StateSet reached;
  bool fixpoint = false;
  int depth = 0;
  double seconds = 0.0;
};

ForwardReachResult forwardReach(const TransitionSystem& system, const StateSet& init,
                                int maxDepth, ImageMethod method,
                                const AllSatOptions& options = {});

}  // namespace presat
