#include "preimage/preimage.hpp"

#include <algorithm>

#include "allsat/chrono_blocking.hpp"
#include "allsat/compress.hpp"
#include "allsat/cube_blocking.hpp"
#include "allsat/lifting.hpp"
#include "allsat/minterm_blocking.hpp"
#include "allsat/success_driven.hpp"
#include "base/log.hpp"
#include "base/timer.hpp"
#include "bdd/bdd.hpp"
#include "cert/certificate.hpp"
#include "circuit/netlist.hpp"
#include "circuit/simulator.hpp"
#include "sat/proof.hpp"
#include "circuit/strash.hpp"
#include "circuit/tseitin.hpp"
#include "govern/governor.hpp"
#include "parallel/parallel_allsat.hpp"
#include "preimage/bdd_preimage.hpp"

namespace presat {

const char* preimageMethodName(PreimageMethod method) {
  switch (method) {
    case PreimageMethod::kMintermBlocking: return "minterm-blocking";
    case PreimageMethod::kCubeBlocking: return "cube-blocking";
    case PreimageMethod::kCubeBlockingLifted: return "cube-blocking-lifted";
    case PreimageMethod::kSuccessDriven: return "success-driven";
    case PreimageMethod::kChrono: return "chrono";
    case PreimageMethod::kBdd: return "bdd";
    case PreimageMethod::kBddRelational: return "bdd-relational";
  }
  return "?";
}

bool preimageMethodUsesCnf(PreimageMethod method) {
  return method == PreimageMethod::kMintermBlocking || method == PreimageMethod::kCubeBlocking ||
         method == PreimageMethod::kCubeBlockingLifted || method == PreimageMethod::kChrono;
}

namespace {

struct SatProblem {
  Cnf cnf;                      // INTERNAL numbering: base formula + target clauses
  std::vector<Var> projection;  // internal CNF var of state bit i at position i
};

// Instantiates the shared encoding for one target: copies the preprocessed
// base formula and adds the target-membership constraint T(δ(s, x)),
// translated into the internal space (next-state-root variables are frozen,
// so every target literal maps; selector variables are fresh internal vars
// with no original counterpart — originalModel simply ignores them).
SatProblem buildSatProblem(const TransitionEncoding& te, const TransitionSystem& system,
                           const StateSet& target) {
  PRESAT_CHECK(target.numStateBits == system.numStateBits());

  SatProblem problem;
  problem.cnf = te.base.cnf;
  Cnf& cnf = problem.cnf;

  auto rootLit = [&](Lit l) {
    return te.base.internalLit(te.enc.litOf(system.nextStateRoot(l.var()), !l.sign()));
  };
  if (target.cubes.empty()) {
    cnf.addClause({});  // empty target: the query is vacuously UNSAT
  } else if (target.cubes.size() == 1) {
    for (Lit l : target.cubes[0]) cnf.addUnit(rootLit(l));
  } else {
    // Union target: selector variable per cube, (sel_i -> cube_i) plus
    // (sel_1 | ... | sel_k).
    Clause atLeastOne;
    for (const LitVec& cube : target.cubes) {
      Lit sel = mkLit(cnf.newVar());
      atLeastOne.push_back(sel);
      for (Lit l : cube) cnf.addBinary(~sel, rootLit(l));
    }
    cnf.addClause(std::move(atLeastOne));
  }

  problem.projection.reserve(te.projection.size());
  for (Var v : te.projection) problem.projection.push_back(te.base.internalVar(v));
  return problem;
}

// Builds the circuit-justification model lifter for the lifted-cube engine.
// The justification machinery speaks the ORIGINAL encoding; internal models
// are lifted through base.originalModel first (eliminated pure variables get
// their forced polarity, so the reconstruction is a genuine model of the
// original formula) and the resulting state cube is translated back (state
// variables are frozen, so internalLit always succeeds).
ModelLifter makeJustificationLifter(const TransitionSystem& system, const StateSet& target,
                                    const TransitionEncoding& te) {
  const Netlist& nl = system.netlist();
  return [&system, &target, &te, &nl](const std::vector<lbool>& internalModel) -> LitVec {
    const std::vector<lbool> model = te.base.originalModel(internalModel);
    // Reconstruct source values from the model (sources outside the encoded
    // cone are irrelevant to the objectives; default them to 0).
    std::vector<bool> sources(nl.numNodes(), false);
    for (NodeId id = 0; id < nl.numNodes(); ++id) {
      if (isCombinational(nl.type(id)) || !te.enc.isEncoded(id)) continue;
      Var v = te.enc.nodeVar[id];
      sources[id] = model[static_cast<size_t>(v)].isTrue();
    }
    std::vector<bool> values = Simulator::evaluateOnce(nl, sources);

    // Find a target cube this model realizes and justify exactly that cube.
    const LitVec* satisfiedCube = nullptr;
    for (const LitVec& cube : target.cubes) {
      bool ok = true;
      for (Lit l : cube) {
        if (values[system.nextStateRoot(l.var())] == l.sign()) {
          ok = false;
          break;
        }
      }
      if (ok) {
        satisfiedCube = &cube;
        break;
      }
    }
    PRESAT_CHECK(satisfiedCube != nullptr) << "model does not reach the target set";

    NodeCube objectives;
    for (Lit l : *satisfiedCube) {
      objectives.emplace_back(system.nextStateRoot(l.var()), !l.sign());
    }
    JustificationLifter lifter(nl, std::move(objectives));
    NodeCube sources2 = lifter.liftedSources(values);

    // Keep only state sources (the projection scope).
    std::vector<bool> isState(nl.numNodes(), false);
    for (NodeId s : system.stateNodes()) isState[s] = true;
    LitVec cube;
    for (const NodeAssign& a : sources2) {
      if (!isState[a.first]) continue;
      cube.push_back(te.base.internalLit(mkLit(te.enc.varOf(a.first), !a.second)));
    }
    return cube;
  };
}

PreimageResult fromAllSat(AllSatResult&& r, int numStateBits) {
  PreimageResult result;
  result.states.numStateBits = numStateBits;
  result.states.cubes = std::move(r.cubes);
  result.guides = std::move(r.guides);
  result.stateCount = std::move(r.mintermCount);
  result.complete = r.complete;
  result.outcome = r.outcome;
  result.stats = r.stats;
  result.metrics = std::move(r.metrics);
  result.seconds = r.stats.seconds;
  // Worker-count-independent by the determinism contract, so CI can assert
  // par1 == par8 straight off the metrics line.
  result.metrics.setCounter("pre.cubes", result.states.cubes.size());
  return result;
}

// Epilogue mirroring allsat's finishResult for the engines that assemble a
// PreimageResult directly (success-driven loop, the two BDD baselines).
void finishPreimage(PreimageResult& result, const Governor* governor) {
  result.complete = (result.outcome == Outcome::kComplete);
  result.metrics.setLabel("outcome", outcomeName(result.outcome));
  if (governor != nullptr) governor->exportMetrics(result.metrics);
}

// Disjointness guarantee backing the certificate's disjoint flag: minterm,
// unlifted-cube, and chrono covers are disjoint by construction, BDD covers
// are distinct root-to-true paths, and wildcard compression preserves all of
// that. Lifted-cube and success-driven covers may overlap (their union is
// still exact).
bool methodCoverDisjoint(PreimageMethod method) {
  switch (method) {
    case PreimageMethod::kMintermBlocking:
    case PreimageMethod::kCubeBlocking:
    case PreimageMethod::kChrono:
    case PreimageMethod::kBdd:
    case PreimageMethod::kBddRelational:
      return true;
    case PreimageMethod::kCubeBlockingLifted:
    case PreimageMethod::kSuccessDriven:
      return false;
  }
  return false;
}

}  // namespace

TransitionEncoding buildTransitionEncoding(const TransitionSystem& system, Governor* governor) {
  TransitionEncoding te;

  std::vector<NodeId> roots = system.nextStateRoots();
  // State sources must be encoded even when unused by any next-state cone,
  // so the projection scope is always the full state space.
  for (NodeId s : system.stateNodes()) roots.push_back(s);
  te.enc = encodeCircuit(system.netlist(), roots);

  te.projection.reserve(static_cast<size_t>(system.numStateBits()));
  for (NodeId s : system.stateNodes()) te.projection.push_back(te.enc.varOf(s));

  // Frozen: the projection scope plus every variable later target clauses
  // constrain (next-state roots). Input/aux variables stay eliminable.
  std::vector<Var> frozen = te.projection;
  for (NodeId root : system.nextStateRoots()) frozen.push_back(te.enc.varOf(root));
  te.base = preprocessCnf(te.enc.cnf, frozen, governor);
  return te;
}

PreimageResult computePreimage(const TransitionSystem& system, const StateSet& target,
                               PreimageMethod method, const PreimageOptions& options) {
  const int n = system.numStateBits();
  PRESAT_CHECK(target.numStateBits == n) << "target state width mismatch";

  if (options.presimplify) {
    // The sweep preserves PI/DFF identity and order, so the swept system has
    // the same state space and the same transition function.
    SweepResult swept = strashSweep(system.netlist());
    TransitionSystem simplified(swept.netlist);
    PreimageOptions inner = options;
    inner.presimplify = false;
    // Any caller-shared encoding speaks the pre-sweep netlist; the recursive
    // call builds a fresh one over the simplified system.
    inner.encoding = nullptr;
    return computePreimage(simplified, target, method, inner);
  }

  // The CNF engines run on the shared (or locally built) preprocessed
  // encoding, so the per-engine preprocess pass would be a redundant second
  // round over an already-reduced formula — clear it.
  std::optional<TransitionEncoding> localEncoding;
  const TransitionEncoding* te = options.encoding;
  AllSatOptions satOpts = options.allsat;
  if (preimageMethodUsesCnf(method)) {
    if (te == nullptr) {
      localEncoding = buildTransitionEncoding(system, options.allsat.governor);
      te = &*localEncoding;
    }
    satOpts.preprocess = false;
  }

  // Certificate plumbing: serial CNF runs log their proof natively (the
  // parallel dispatcher clears the log per shard and the cover is replayed
  // post-hoc instead); compression traces its merge witnesses on every
  // serial path. The non-CNF engines still need the encoding — the
  // certificate embeds the CNF their cover is checked against.
  ProofLog nativeLog;
  std::vector<CompressMergeRecord> mergeTrace;
  if (options.emitCertificate) {
    if (te == nullptr) {
      localEncoding = buildTransitionEncoding(system, options.allsat.governor);
      te = &*localEncoding;
    }
    if (preimageMethodUsesCnf(method) && !satOpts.parallel.enabled()) {
      satOpts.proofLog = &nativeLog;
    }
    satOpts.compressTrace = &mergeTrace;
  }

  auto withPreprocessMetrics = [&te](PreimageResult&& r) {
    exportPreprocessMetrics(te->base.stats, r.metrics);
    return std::move(r);
  };

  PreimageResult result = [&]() -> PreimageResult {
  switch (method) {
    case PreimageMethod::kMintermBlocking: {
      SatProblem problem = buildSatProblem(*te, system, target);
      if (satOpts.parallel.enabled()) {
        return withPreprocessMetrics(
            fromAllSat(parallelCnfAllSat(problem.cnf, problem.projection,
                                         ParallelCnfEngine::kMintermBlocking, {}, satOpts),
                       n));
      }
      return withPreprocessMetrics(
          fromAllSat(mintermBlockingAllSat(problem.cnf, problem.projection, satOpts), n));
    }
    case PreimageMethod::kCubeBlocking: {
      SatProblem problem = buildSatProblem(*te, system, target);
      AllSatOptions opts = satOpts;
      opts.liftModels = false;
      if (opts.parallel.enabled()) {
        return withPreprocessMetrics(
            fromAllSat(parallelCnfAllSat(problem.cnf, problem.projection,
                                         ParallelCnfEngine::kCubeBlocking, {}, opts),
                       n));
      }
      return withPreprocessMetrics(
          fromAllSat(cubeBlockingAllSat(problem.cnf, problem.projection, {}, opts), n));
    }
    case PreimageMethod::kCubeBlockingLifted: {
      SatProblem problem = buildSatProblem(*te, system, target);
      ModelLifter lifter = makeJustificationLifter(system, target, *te);
      if (satOpts.parallel.enabled()) {
        return withPreprocessMetrics(
            fromAllSat(parallelCnfAllSat(problem.cnf, problem.projection,
                                         ParallelCnfEngine::kCubeBlocking, lifter, satOpts),
                       n));
      }
      return withPreprocessMetrics(
          fromAllSat(cubeBlockingAllSat(problem.cnf, problem.projection, lifter, satOpts), n));
    }
    case PreimageMethod::kChrono: {
      SatProblem problem = buildSatProblem(*te, system, target);
      if (satOpts.parallel.enabled()) {
        return withPreprocessMetrics(fromAllSat(
            parallelCnfAllSat(problem.cnf, problem.projection, ParallelCnfEngine::kChrono, {},
                              satOpts),
            n));
      }
      return withPreprocessMetrics(
          fromAllSat(chronoAllSat(problem.cnf, problem.projection, satOpts), n));
    }
    case PreimageMethod::kSuccessDriven: {
      Timer timer;
      PreimageResult result;
      result.states.numStateBits = n;
      for (const LitVec& cube : target.cubes) {
        CircuitAllSatProblem problem;
        problem.netlist = &system.netlist();
        problem.projectionSources = system.stateNodes();
        for (Lit l : cube) problem.objectives.emplace_back(system.nextStateRoot(l.var()), !l.sign());
        SuccessDrivenResult sub = satOpts.parallel.enabled()
                                      ? parallelSuccessDrivenAllSat(problem, satOpts)
                                      : successDrivenAllSat(problem, satOpts);
        result.states.cubes.insert(result.states.cubes.end(), sub.summary.cubes.begin(),
                                   sub.summary.cubes.end());
        result.complete = result.complete && sub.summary.complete;
        result.outcome = combineOutcomes(result.outcome, sub.summary.outcome);
        result.stats.satCalls += 1;
        result.stats.decisions += sub.summary.stats.decisions;
        result.stats.conflicts += sub.summary.stats.conflicts;
        result.stats.memoHits += sub.summary.stats.memoHits;
        result.stats.memoMisses += sub.summary.stats.memoMisses;
        result.stats.memoEvictions += sub.summary.stats.memoEvictions;
        result.stats.memoEntries += sub.summary.stats.memoEntries;
        result.stats.memoBytes += sub.summary.stats.memoBytes;
        result.stats.graphNodes += sub.summary.stats.graphNodes;
        result.stats.graphEdges += sub.summary.stats.graphEdges;
        // Histograms merge across sub-runs; the counter totals are rewritten
        // from the accumulated stats below.
        result.metrics.merge(sub.summary.metrics);
        result.graphs.push_back(std::move(sub.graph));
      }
      // Cross-target epilogue: each sub-run already projected/compressed its
      // own cover, but the concatenation across target cubes can repeat or
      // overlap cubes between sub-runs. The union — and the graph-side
      // count below — is unchanged.
      if (satOpts.project) dedupCubes(result.states.cubes);
      if (satOpts.compress) {
        compressCubes(result.states.cubes, satOpts.governor, satOpts.compressTrace);
      }
      if (satOpts.project) {
        result.metrics.setCounter("proj.cubes", result.states.cubes.size());
      }
      // Exact union count straight from the graphs (never enumerates paths).
      BddManager mgr(n);
      BddRef u = BddManager::kFalse;
      for (const SolutionGraph& g : result.graphs) u = mgr.bddOr(u, g.toBdd(mgr));
      result.stateCount = mgr.satCount(u);
      result.seconds = timer.seconds();
      result.stats.seconds = result.seconds;
      result.metrics.setLabel("engine", "success-driven");
      result.metrics.setCounter("pre.cubes", result.states.cubes.size());
      exportStatsToMetrics(result.stats, result.metrics);
      finishPreimage(result, options.allsat.governor);
      return result;
    }
    case PreimageMethod::kBdd: {
      Timer timer;
      Governor* governor = options.allsat.governor;
      PreimageResult result;
      result.states.numStateBits = n;
      try {
        BddTransition transition(system, governor);
        BddRef pre = transition.preimage(target.toBdd(transition.manager()));
        result.states = transition.toStateSet(pre);
        result.stateCount = transition.countStates(pre);
        result.bddNodes = transition.manager().numNodes();
      } catch (const GovernorStop& stop) {
        // Mid-apply there is no usable partial BDD; the empty set is the
        // sound under-approximation this engine degrades to.
        result.states.cubes.clear();
        result.stateCount = BigUint(0);
        result.outcome = stop.reason;
      }
      result.seconds = timer.seconds();
      result.metrics.setLabel("engine", "bdd");
      result.metrics.setCounter("bdd.nodes", result.bddNodes);
      result.metrics.setCounter("pre.cubes", result.states.cubes.size());
      result.metrics.setGauge("time.seconds", result.seconds);
      finishPreimage(result, governor);
      return result;
    }
    case PreimageMethod::kBddRelational: {
      Timer timer;
      Governor* governor = options.allsat.governor;
      PreimageResult result;
      result.states.numStateBits = n;
      try {
        BddRelationalTransition transition(system, governor);
        BddRef pre = transition.preimage(target.toBdd(transition.manager()));
        result.states = transition.toStateSet(pre);
        // The relational manager spans s, s', x; a state BDD's satCount must
        // shed the factor for the 2n+m - n variables outside its support.
        BigUint count = transition.manager().satCount(pre);
        count >>= static_cast<uint32_t>(system.numStateBits() + system.numInputs());
        result.stateCount = std::move(count);
        result.bddNodes = transition.manager().numNodes();
      } catch (const GovernorStop& stop) {
        result.states.cubes.clear();
        result.stateCount = BigUint(0);
        result.outcome = stop.reason;
      }
      result.seconds = timer.seconds();
      result.metrics.setLabel("engine", "bdd-relational");
      result.metrics.setCounter("bdd.nodes", result.bddNodes);
      result.metrics.setCounter("pre.cubes", result.states.cubes.size());
      result.metrics.setGauge("time.seconds", result.seconds);
      finishPreimage(result, governor);
      return result;
    }
  }
  PRESAT_CHECK(false) << "unknown preimage method";
  return {};
  }();

  if (options.emitCertificate) {
    // The certificate embeds the same CNF instantiation the CNF engines
    // solved (buildSatProblem is deterministic in (encoding, target), so
    // rebuilding it here matches the engine's formula bit for bit); the
    // circuit-level engines' covers are checked against it too — the state
    // projection is shared, so their cubes speak the same scope.
    SatProblem problem = buildSatProblem(*te, system, target);
    CertificateSpec spec;
    spec.cnf = &problem.cnf;
    spec.scope = &problem.projection;
    spec.cubes = &result.states.cubes;
    if (!result.guides.empty()) spec.guides = &result.guides;
    if (!mergeTrace.empty()) spec.merges = &mergeTrace;
    if (satOpts.proofLog != nullptr) spec.nativeProof = satOpts.proofLog;
    spec.outcome = result.outcome;
    spec.disjoint = methodCoverDisjoint(method);
    spec.engine = preimageMethodName(method);
    spec.circuitHash = netlistStructuralHash(system.netlist());
    spec.jobs = satOpts.parallel.jobs;
    spec.project = satOpts.project;
    spec.compress = satOpts.compress;
    CertificateResult cert = buildCertificate(spec);
    result.certificate = std::move(cert.cert);
    result.dratText = std::move(cert.dratText);
    result.dratBinary = std::move(cert.dratBinary);
    result.metrics.setCounter("cert.bytes", result.certificate.size());
    result.metrics.setCounter("cert.proof_steps", nativeLog.numSteps());
  }
  return result;
}

}  // namespace presat
