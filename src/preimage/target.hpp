// State sets as cube lists over the state index space.
//
// This is the interchange format between preimage steps: the target of a
// query, and its result, are both unions of cubes over the state bits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/biguint.hpp"
#include "base/types.hpp"

namespace presat {

class BddManager;

struct StateSet {
  int numStateBits = 0;
  // Union of cubes; variable i of each literal is state bit i.
  std::vector<LitVec> cubes;

  static StateSet fromCube(int numStateBits, LitVec cube);
  // State given as bit pattern (bit i = state bit i).
  static StateSet fromMinterm(int numStateBits, uint64_t minterm);
  static StateSet all(int numStateBits) { return fromCube(numStateBits, {}); }
  static StateSet none(int numStateBits) { return {numStateBits, {}}; }

  bool empty() const { return cubes.empty(); }
  // Exact number of states in the union.
  BigUint countStates() const;
  // Membership test for a concrete state.
  bool contains(const std::vector<bool>& state) const;

  uint32_t toBdd(BddManager& mgr) const;

  std::string toString() const;
};

// Semantic equality of two state sets (via BDDs).
bool sameStates(const StateSet& a, const StateSet& b);

}  // namespace presat
