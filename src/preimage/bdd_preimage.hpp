// BDD-based preimage computation — the symbolic baseline.
//
// Builds one BDD per next-state function (variable order: state bits first,
// then inputs), then computes Pre(T) = ∃x. T(s' ← δ(s, x)) by vector
// composition followed by input quantification.
#pragma once

#include <memory>
#include <vector>

#include "bdd/bdd.hpp"
#include "preimage/target.hpp"
#include "preimage/transition_system.hpp"

namespace presat {

class BddTransition {
 public:
  // `governor` (optional, not owned) governs the node pool: construction —
  // which builds the per-state-bit function BDDs — and every later query
  // throw GovernorStop once it trips. See BddManager::setGovernor.
  explicit BddTransition(const TransitionSystem& system, Governor* governor = nullptr);

  BddManager& manager() { return mgr_; }
  // BDD variable index of state bit i is i; of input j is numStateBits + j.
  BddRef delta(int stateBit) const { return delta_[static_cast<size_t>(stateBit)]; }

  // One-step preimage of a state-space BDD (support must be state vars).
  BddRef preimage(BddRef target);
  StateSet preimage(const StateSet& target);

  StateSet toStateSet(BddRef stateBdd);
  BddRef toBdd(const StateSet& set) { return set.toBdd(mgr_); }
  BigUint countStates(BddRef stateBdd);

 private:
  const TransitionSystem& system_;
  BddManager mgr_;
  std::vector<BddRef> delta_;
  std::vector<Var> inputVars_;
};

// Transition-relation variant: builds the monolithic relation
// TR(s, s', x) = ∏ (s'_i ≡ δ_i(s, x)) once, then computes
// Pre(T) = ∃s',x. TR ∧ T[s ← s'] with one relational product per query.
// Variable order: s at 0..n-1, s' at n..2n-1, inputs at 2n..2n+m-1.
class BddRelationalTransition {
 public:
  // `governor` as in BddTransition (here it additionally governs the
  // monolithic transition-relation build).
  explicit BddRelationalTransition(const TransitionSystem& system,
                                   Governor* governor = nullptr);

  BddManager& manager() { return mgr_; }
  BddRef relation() const { return relation_; }

  BddRef preimage(BddRef target);  // target over s variables
  StateSet preimage(const StateSet& target);
  StateSet toStateSet(BddRef stateBdd);

 private:
  const TransitionSystem& system_;
  BddManager mgr_;
  BddRef relation_;
  std::vector<Var> quantified_;       // s' ∪ x
  std::vector<BddRef> shiftToPrime_;  // substitution s_i -> s'_i
};

// Convenience one-shot wrapper.
StateSet bddPreimage(const TransitionSystem& system, const StateSet& target,
                     double* seconds = nullptr, size_t* peakNodes = nullptr);

}  // namespace presat
