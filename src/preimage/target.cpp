#include "preimage/target.hpp"

#include "allsat/projection.hpp"
#include "base/log.hpp"
#include "bdd/bdd.hpp"

namespace presat {

StateSet StateSet::fromCube(int numStateBits, LitVec cube) {
  for (Lit l : cube) {
    PRESAT_CHECK(l.var() >= 0 && l.var() < numStateBits) << "cube literal out of state range";
  }
  StateSet s;
  s.numStateBits = numStateBits;
  s.cubes.push_back(std::move(cube));
  return s;
}

StateSet StateSet::fromMinterm(int numStateBits, uint64_t minterm) {
  PRESAT_CHECK(numStateBits <= 64);
  LitVec cube;
  cube.reserve(static_cast<size_t>(numStateBits));
  for (int i = 0; i < numStateBits; ++i) {
    cube.push_back(mkLit(static_cast<Var>(i), ((minterm >> i) & 1) == 0));
  }
  return fromCube(numStateBits, std::move(cube));
}

BigUint StateSet::countStates() const {
  return countCubeUnionMinterms(cubes, numStateBits);
}

bool StateSet::contains(const std::vector<bool>& state) const {
  PRESAT_CHECK(state.size() == static_cast<size_t>(numStateBits));
  for (const LitVec& cube : cubes) {
    bool covered = true;
    for (Lit l : cube) {
      if (state[static_cast<size_t>(l.var())] == l.sign()) {
        covered = false;
        break;
      }
    }
    if (covered) return true;
  }
  return false;
}

uint32_t StateSet::toBdd(BddManager& mgr) const {
  return cubesToBdd(mgr, cubes);
}

std::string StateSet::toString() const {
  std::string out;
  for (size_t i = 0; i < cubes.size(); ++i) {
    if (i) out += " + ";
    if (cubes[i].empty()) {
      out += "1";
      continue;
    }
    for (Lit l : cubes[i]) {
      out += l.sign() ? "~s" : "s";
      out += std::to_string(l.var());
      out += ".";
    }
    out.pop_back();
  }
  if (cubes.empty()) out = "0";
  return out;
}

bool sameStates(const StateSet& a, const StateSet& b) {
  PRESAT_CHECK(a.numStateBits == b.numStateBits);
  BddManager mgr(a.numStateBits);
  return a.toBdd(mgr) == b.toBdd(mgr);
}

}  // namespace presat
