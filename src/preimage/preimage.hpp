// One-step preimage computation — the paper's headline application.
//
// Pre(T) = { s | ∃x. δ(s, x) ∈ T }: all present states from which some input
// drives the circuit into the target set in one clock. Seven engines compute
// the same set:
//   kMintermBlocking    CDCL + one blocking clause per projected minterm
//   kCubeBlocking       CDCL + blocking whole projected minterms (no lift)
//   kCubeBlockingLifted CDCL + justification-lifted cube blocking
//   kSuccessDriven      the paper's solver (justification search + success-
//                       driven learning + solution graph)
//   kChrono             chronological-backtracking enumeration — disjoint
//                       cubes, zero blocking clauses (flat clause DB)
//   kBdd                symbolic baseline (compose + quantify)
//   kBddRelational      symbolic baseline (monolithic transition relation +
//                       relational product)
#pragma once

#include <optional>
#include <vector>

#include "allsat/projection.hpp"
#include "allsat/solution_graph.hpp"
#include "circuit/tseitin.hpp"
#include "cnf/preprocess.hpp"
#include "preimage/target.hpp"
#include "preimage/transition_system.hpp"

namespace presat {

enum class PreimageMethod {
  kMintermBlocking,
  kCubeBlocking,
  kCubeBlockingLifted,
  kSuccessDriven,
  kChrono,
  kBdd,
  kBddRelational,
};

const char* preimageMethodName(PreimageMethod method);

// True for the engines that solve a CNF encoding of the transition function
// (and therefore benefit from a shared TransitionEncoding, below).
bool preimageMethodUsesCnf(PreimageMethod method);

inline constexpr PreimageMethod kAllPreimageMethods[] = {
    PreimageMethod::kMintermBlocking, PreimageMethod::kCubeBlocking,
    PreimageMethod::kCubeBlockingLifted, PreimageMethod::kSuccessDriven,
    PreimageMethod::kChrono,          PreimageMethod::kBdd,
    PreimageMethod::kBddRelational,
};

// Target-independent, shareable encoding of a transition system for the CNF
// preimage engines: the Tseitin encoding of the next-state cones (original
// numbering) plus the one-shot preprocessed base formula (cnf/preprocess.hpp)
// with the state and next-state-root variables frozen. Per-query target
// clauses are added on a copy of `base.cnf` (translated through
// base.internalLit), so frontier loops (reachability/safety) and the
// presat_serve context pool pay for encoding + preprocessing once per
// circuit instead of once per query.
struct TransitionEncoding {
  CircuitEncoding enc;          // roots = next-state roots + state nodes
  PreprocessedCnf base;         // preprocessed enc.cnf, internal numbering
  std::vector<Var> projection;  // ORIGINAL cnf var of state bit i
};

// `governor` is only consulted by the cnf.preprocess fault site (may be
// null). Deterministic in `system`.
TransitionEncoding buildTransitionEncoding(const TransitionSystem& system,
                                           Governor* governor = nullptr);

struct PreimageOptions {
  AllSatOptions allsat;
  // Run the structural-hashing / constant sweep (circuit/strash.hpp) on the
  // netlist before encoding. State-bit order is preserved, so results are
  // identical; the SAT engines then solve a smaller formula.
  bool presimplify = false;
  // Shared per-circuit encoding, built with buildTransitionEncoding on the
  // SAME TransitionSystem this query runs on. Null (the default) builds one
  // locally per query. Not owned; must outlive the call. Ignored by the
  // success-driven and BDD engines (they work on the netlist directly).
  const TransitionEncoding* encoding = nullptr;
  // Emit a presat-cert-v1 certificate (cert/certificate.hpp) into
  // PreimageResult::certificate, verifiable by the standalone presat_check
  // tool. Serial CNF engines log their proof natively during the run; every
  // other path (parallel, success-driven, BDD, partial covers) is replayed
  // post-hoc. Off by default — the zero-cost path adds no work anywhere.
  bool emitCertificate = false;
};

struct PreimageResult {
  StateSet states;      // union of cubes = exact preimage (a sound
                        // under-approximation when outcome != kComplete)
  BigUint stateCount;   // exact count of the union (lower bound when partial)
  bool complete = true;
  // Structured stop reason (govern/budget.hpp); always consistent with
  // `complete`. The BDD engines degrade to the EMPTY set on a trip — the
  // symbolic recursion has no usable partial answer — which is still a
  // sound under-approximation.
  Outcome outcome = Outcome::kComplete;
  AllSatStats stats;    // zero-initialized for the BDD engine
  // Observability export of `stats` (plus engine-specific histograms, merged
  // across per-target-cube sub-runs for the success-driven engine).
  Metrics metrics;
  double seconds = 0.0;
  size_t bddNodes = 0;  // BDD engine only: manager size after the query
  // Success-driven engine only: one solution graph per target cube.
  std::vector<SolutionGraph> graphs;
  // Parallel runs: the disjoint guide cubes of the shard split (projected
  // index space) — the certificate's cross-shard disjointness argument.
  std::vector<LitVec> guides;
  // Only with PreimageOptions::emitCertificate: the presat-cert-v1 text and
  // the DRAT serializations of the proof it embeds.
  std::string certificate;
  std::string dratText;
  std::string dratBinary;
};

PreimageResult computePreimage(const TransitionSystem& system, const StateSet& target,
                               PreimageMethod method, const PreimageOptions& options = {});

}  // namespace presat
