// Bounded model checking by time-frame expansion — the forward companion to
// the backward preimage engines.
//
// boundedReach answers "can `target` be reached from `init` within maxDepth
// transitions?" with one SAT query per depth over the unrolled circuit, and
// extracts the witness trace from the satisfying model. Tests cross-check it
// against backward reachability and the safety checker: the three must agree
// on reachability and on the minimal depth.
#pragma once

#include <vector>

#include "preimage/target.hpp"
#include "preimage/transition_system.hpp"

namespace presat {

struct BmcResult {
  bool reachable = false;
  int depth = -1;  // smallest depth at which target is hit (0 = init ∩ target)
  // Witness when reachable: states[0] ∈ init, states[depth] ∈ target,
  // inputs[t] drives states[t] -> states[t+1].
  std::vector<std::vector<bool>> traceStates;
  std::vector<std::vector<bool>> traceInputs;
  uint64_t satCalls = 0;
  double seconds = 0.0;
};

BmcResult boundedReach(const TransitionSystem& system, const StateSet& init,
                       const StateSet& target, int maxDepth);

// Incremental variant: unrolls maxDepth frames once into a single solver and
// issues one assumption-guarded query per depth, so learnt clauses carry over
// between depths (the standard BMC engineering trick). Same results as
// boundedReach; cheaper on deep bounds.
BmcResult boundedReachIncremental(const TransitionSystem& system, const StateSet& init,
                                  const StateSet& target, int maxDepth);

}  // namespace presat
