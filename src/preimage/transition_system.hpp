// View of a sequential netlist as a finite transition system.
//
// State bit i is the i-th DFF output (present state); its next-state function
// is the DFF's data cone over present-state and primary-input nodes. All
// preimage engines speak the *state index space*: literal variable i in a
// state cube refers to state bit i.
#pragma once

#include <vector>

#include "base/types.hpp"
#include "circuit/netlist.hpp"

namespace presat {

class TransitionSystem {
 public:
  explicit TransitionSystem(const Netlist& netlist);

  const Netlist& netlist() const { return *netlist_; }
  int numStateBits() const { return static_cast<int>(stateNodes_.size()); }
  int numInputs() const { return static_cast<int>(inputNodes_.size()); }

  // Present-state source node of bit i.
  NodeId stateNode(int i) const { return stateNodes_[static_cast<size_t>(i)]; }
  // Root of the next-state function of bit i (the DFF's data pin).
  NodeId nextStateRoot(int i) const { return nextRoots_[static_cast<size_t>(i)]; }
  NodeId inputNode(int i) const { return inputNodes_[static_cast<size_t>(i)]; }

  const std::vector<NodeId>& stateNodes() const { return stateNodes_; }
  const std::vector<NodeId>& inputNodes() const { return inputNodes_; }
  const std::vector<NodeId>& nextStateRoots() const { return nextRoots_; }

  // Simulates one transition: given present state and input bit vectors
  // (indexed by state/input position), returns the next state.
  std::vector<bool> step(const std::vector<bool>& state, const std::vector<bool>& inputs) const;

 private:
  const Netlist* netlist_;
  std::vector<NodeId> stateNodes_;
  std::vector<NodeId> inputNodes_;
  std::vector<NodeId> nextRoots_;
};

}  // namespace presat
