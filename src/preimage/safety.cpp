#include "preimage/safety.hpp"

#include <cstdio>
#include <string>

#include "base/log.hpp"
#include "base/timer.hpp"
#include "bdd/bdd.hpp"
#include "circuit/tseitin.hpp"
#include "govern/governor.hpp"
#include "sat/solver.hpp"

namespace presat {

const char* safetyStatusName(SafetyStatus status) {
  switch (status) {
    case SafetyStatus::kSafe: return "SAFE";
    case SafetyStatus::kUnsafe: return "UNSAFE";
    case SafetyStatus::kUnknown: return "UNKNOWN";
  }
  return "?";
}

bool findTransitionInto(const TransitionSystem& system, const std::vector<bool>& state,
                        const StateSet& target, std::vector<bool>* inputsOut,
                        std::vector<bool>* nextStateOut) {
  const Netlist& nl = system.netlist();
  PRESAT_CHECK(state.size() == static_cast<size_t>(system.numStateBits()));
  PRESAT_CHECK(target.numStateBits == system.numStateBits());

  std::vector<NodeId> roots = system.nextStateRoots();
  for (NodeId s : system.stateNodes()) roots.push_back(s);
  CircuitEncoding enc = encodeCircuit(nl, roots);
  Cnf& cnf = enc.cnf;

  // Pin the present state.
  for (int i = 0; i < system.numStateBits(); ++i) {
    cnf.addUnit(enc.litOf(system.stateNode(i), state[static_cast<size_t>(i)]));
  }
  // Require the next state to land in the target union.
  if (target.cubes.empty()) return false;
  Clause atLeastOne;
  for (const LitVec& cube : target.cubes) {
    Lit sel = mkLit(cnf.newVar());
    atLeastOne.push_back(sel);
    for (Lit l : cube) {
      cnf.addBinary(~sel, enc.litOf(system.nextStateRoot(l.var()), !l.sign()));
    }
  }
  cnf.addClause(std::move(atLeastOne));

  Solver solver;
  if (!solver.addCnf(cnf)) return false;
  if (!solver.solve().isTrue()) return false;

  if (inputsOut) {
    inputsOut->assign(static_cast<size_t>(system.numInputs()), false);
    for (int j = 0; j < system.numInputs(); ++j) {
      NodeId in = system.inputNode(j);
      // Inputs outside every next-state cone are unconstrained; default 0.
      (*inputsOut)[static_cast<size_t>(j)] =
          enc.isEncoded(in) && solver.modelValue(enc.varOf(in));
    }
  }
  if (nextStateOut) {
    nextStateOut->assign(static_cast<size_t>(system.numStateBits()), false);
    for (int i = 0; i < system.numStateBits(); ++i) {
      (*nextStateOut)[static_cast<size_t>(i)] = solver.modelValue(enc.varOf(system.nextStateRoot(i)));
    }
  }
  return true;
}

namespace {

// Picks one concrete state out of a non-empty BDD over the state space.
std::vector<bool> pickState(BddManager& mgr, BddRef set, int numStateBits) {
  PRESAT_CHECK(set != BddManager::kFalse);
  std::vector<bool> state(static_cast<size_t>(numStateBits), false);
  BddRef cur = set;
  while (!mgr.isConstant(cur)) {
    Var v = mgr.topVar(cur);
    if (mgr.low(cur) != BddManager::kFalse) {
      state[static_cast<size_t>(v)] = false;
      cur = mgr.low(cur);
    } else {
      state[static_cast<size_t>(v)] = true;
      cur = mgr.high(cur);
    }
  }
  PRESAT_CHECK(cur == BddManager::kTrue);
  return state;
}

}  // namespace

SafetyResult checkSafety(const TransitionSystem& system, const StateSet& initial,
                         const StateSet& bad, const SafetyOptions& options) {
  Timer timer;
  const int n = system.numStateBits();
  PRESAT_CHECK(initial.numStateBits == n && bad.numStateBits == n);

  SafetyResult result;
  // The governor (if any) also governs the set-algebra manager; a trip
  // unwinds via GovernorStop to the catch below, and the verdict degrades to
  // kUnknown with the backward sets accumulated so far.
  Governor* governor = options.preimage.allsat.governor;

  // One circuit encoding + preprocessing pass for the whole backward sweep.
  std::optional<TransitionEncoding> sharedEncoding;
  SafetyOptions safeOptions = options;
  if (!options.preimage.presimplify && options.preimage.encoding == nullptr &&
      preimageMethodUsesCnf(options.method)) {
    sharedEncoding = buildTransitionEncoding(system, governor);
    safeOptions.preimage.encoding = &*sharedEncoding;
  }

  BddManager mgr(n);
  mgr.setGovernor(governor);
  BddRef initBdd = BddManager::kFalse;
  BddRef reached = BddManager::kFalse;
  BddRef frontier = BddManager::kFalse;

  // Layered backward sets: cumulative[d] = states reaching bad in <= d steps.
  std::vector<StateSet> cumulative;
  auto snapshot = [&](BddRef set) {
    StateSet s;
    s.numStateBits = n;
    s.cubes = mgr.enumerateCubes(set);
    return s;
  };

  int hitDepth = -1;
  int depth = 0;
  try {
    initBdd = initial.toBdd(mgr);
    reached = bad.toBdd(mgr);
    frontier = reached;
    cumulative.push_back(snapshot(reached));
    if (mgr.bddAnd(initBdd, reached) != BddManager::kFalse) hitDepth = 0;

    while (hitDepth < 0 && depth < options.maxDepth) {
      if (frontier == BddManager::kFalse) {
        result.status = SafetyStatus::kSafe;
        result.depth = depth;
        break;
      }
      ++depth;
      StateSet frontierSet = snapshot(frontier);
      PreimageResult pre =
          computePreimage(system, frontierSet, options.method, safeOptions.preimage);
      BddRef preBdd = pre.states.toBdd(mgr);
      frontier = mgr.bddAnd(preBdd, mgr.bddNot(reached));
      reached = mgr.bddOr(reached, preBdd);
      cumulative.push_back(snapshot(reached));
      if (mgr.bddAnd(initBdd, reached) != BddManager::kFalse) hitDepth = depth;

      // Per-depth record, same schema as backwardReach's reach metrics.
      char buf[32];
      std::snprintf(buf, sizeof buf, "step.%04d.", depth);
      std::string prefix(buf);
      BigUint fresh = mgr.satCount(frontier);
      if (fresh.fitsU64()) {
        result.metrics.setCounter(prefix + "new_states", fresh.toU64());
      } else {
        result.metrics.setGauge(prefix + "new_states", fresh.toDouble());
      }
      result.metrics.setCounter(prefix + "frontier_cubes", frontierSet.cubes.size());
      result.metrics.setGauge(prefix + "seconds", pre.seconds);

      if (pre.outcome != Outcome::kComplete) {
        // Partial preimage: the fold above stays sound (every partial cube
        // genuinely reaches bad), and an UNSAFE hit detected through it
        // stands. Without a hit the truncated frontier cannot support a
        // SAFE claim, so stop and leave the verdict kUnknown.
        result.outcome = pre.outcome;
        break;
      }
    }
  } catch (const GovernorStop& stop) {
    // Set algebra tripped: reached/frontier/cumulative keep the last fully
    // computed values; the snapshot below is node-walk only and safe.
    result.outcome = stop.reason;
  }

  result.backwardReached = snapshot(reached);

  if (hitDepth >= 0) {
    try {
      result.status = SafetyStatus::kUnsafe;
      result.depth = hitDepth;
      // Trace extraction: start at an initial state inside the depth-d cone,
      // then step into strictly shallower layers until the bad set is
      // reached.
      std::vector<bool> current = pickState(
          mgr, mgr.bddAnd(initBdd, cumulative[static_cast<size_t>(hitDepth)].toBdd(mgr)), n);
      result.traceStates.push_back(current);
      for (int layer = hitDepth; layer > 0; --layer) {
        if (bad.contains(current)) break;  // reached bad early
        std::vector<bool> inputs, next;
        bool found = findTransitionInto(system, current,
                                        cumulative[static_cast<size_t>(layer - 1)], &inputs, &next);
        PRESAT_CHECK(found) << "layered backward sets must admit a forward step";
        result.traceInputs.push_back(std::move(inputs));
        current = std::move(next);
        result.traceStates.push_back(current);
      }
      PRESAT_CHECK(bad.contains(result.traceStates.back()))
          << "counterexample does not end in the bad set";
      // The forward replay may reach bad before exhausting the layers.
      result.depth = static_cast<int>(result.traceInputs.size());
    } catch (const GovernorStop& stop) {
      // The budget died between the verdict and its witness. Report the
      // undecided outcome rather than an UNSAFE verdict backed by a broken
      // counterexample.
      result.status = SafetyStatus::kUnknown;
      result.outcome = stop.reason;
      result.traceStates.clear();
      result.traceInputs.clear();
      result.depth = depth;
    }
  } else if (result.status != SafetyStatus::kSafe) {
    result.status = SafetyStatus::kUnknown;
    result.depth = depth;
  }
  result.seconds = timer.seconds();
  result.metrics.setCounter("safety.depth", static_cast<uint64_t>(result.depth));
  result.metrics.setCounter("safety.steps", static_cast<uint64_t>(depth));
  result.metrics.setGauge("time.seconds", result.seconds);
  result.metrics.setLabel("engine", preimageMethodName(options.method));
  result.metrics.setLabel("status", safetyStatusName(result.status));
  result.metrics.setLabel("outcome", outcomeName(result.outcome));
  if (governor != nullptr) governor->exportMetrics(result.metrics);
  return result;
}

}  // namespace presat
