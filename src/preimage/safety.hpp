// Unbounded safety checking by backward reachability — the model-checking
// loop the paper's preimage engine plugs into.
//
// A property "bad states are never reachable from the initial states" is
// checked by iterating preimages from the bad set: if the backward fixpoint
// closes without touching the initial set, the design is SAFE; if some
// initial state enters the backward cone at depth d, the design is UNSAFE
// and a concrete length-d counterexample trace (states + inputs) is
// extracted by replaying the layered backward sets forward with single SAT
// queries.
#pragma once

#include <vector>

#include "preimage/preimage.hpp"
#include "preimage/reachability.hpp"

namespace presat {

enum class SafetyStatus {
  kSafe,     // backward fixpoint closed away from the initial states
  kUnsafe,   // counterexample found
  kUnknown,  // depth bound exhausted before closing
};

const char* safetyStatusName(SafetyStatus status);

struct SafetyOptions {
  int maxDepth = 10000;
  PreimageMethod method = PreimageMethod::kSuccessDriven;
  PreimageOptions preimage;
};

struct SafetyResult {
  SafetyStatus status = SafetyStatus::kUnknown;
  // Structured stop reason (govern/budget.hpp). A budget trip mid-iteration
  // degrades the verdict to kUnknown (never to kSafe — closure cannot be
  // claimed from a truncated backward cone); an UNSAFE hit found before the
  // trip stands, because the partial backward sets only ever contain states
  // that genuinely reach the bad set.
  Outcome outcome = Outcome::kComplete;
  // Depth at which the verdict was reached: counterexample length for
  // kUnsafe, closing depth for kSafe.
  int depth = 0;
  // For kUnsafe: states[0] is initial, states.back() is bad;
  // inputs[i] drives states[i] -> states[i+1] (inputs.size() == depth).
  std::vector<std::vector<bool>> traceStates;
  std::vector<std::vector<bool>> traceInputs;
  // Backward-reachable set accumulated up to the verdict.
  StateSet backwardReached;
  double seconds = 0.0;
  // Per-depth step records ("step.0001.new_states", "step.0001.seconds", ...)
  // plus the verdict ("safety.depth", labels engine/status) for
  // presat_cli safety --stats json.
  Metrics metrics;
};

SafetyResult checkSafety(const TransitionSystem& system, const StateSet& initial,
                         const StateSet& bad, const SafetyOptions& options = {});

// Single-transition witness query: is there an input taking `state` into
// `target` in one step? Returns the input vector if so. Exposed for reuse by
// the BMC cross-checks and the trace extractor.
bool findTransitionInto(const TransitionSystem& system, const std::vector<bool>& state,
                        const StateSet& target, std::vector<bool>* inputsOut,
                        std::vector<bool>* nextStateOut);

}  // namespace presat
