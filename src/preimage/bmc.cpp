#include "preimage/bmc.hpp"

#include "base/log.hpp"
#include "base/timer.hpp"
#include "circuit/tseitin.hpp"
#include "circuit/unroll.hpp"
#include "sat/solver.hpp"

namespace presat {

namespace {

// Adds "state nodes `nodes` lie in `set`" via one selector per cube.
void constrainStateSet(Cnf& cnf, const CircuitEncoding& enc, const std::vector<NodeId>& nodes,
                       const StateSet& set) {
  PRESAT_CHECK(!set.cubes.empty()) << "empty state set makes the query trivially UNSAT";
  Clause atLeastOne;
  for (const LitVec& cube : set.cubes) {
    Lit sel = mkLit(cnf.newVar());
    atLeastOne.push_back(sel);
    for (Lit l : cube) {
      cnf.addBinary(~sel, enc.litOf(nodes[static_cast<size_t>(l.var())], !l.sign()));
    }
  }
  cnf.addClause(std::move(atLeastOne));
}

}  // namespace

BmcResult boundedReach(const TransitionSystem& system, const StateSet& init,
                       const StateSet& target, int maxDepth) {
  Timer timer;
  const int n = system.numStateBits();
  PRESAT_CHECK(init.numStateBits == n && target.numStateBits == n);
  BmcResult result;
  if (init.cubes.empty() || target.cubes.empty()) {
    result.seconds = timer.seconds();
    return result;
  }

  for (int k = 0; k <= maxDepth; ++k) {
    UnrolledCircuit unrolled = unroll(system, k);
    CircuitEncoding enc = encodeCircuit(unrolled.netlist);
    constrainStateSet(enc.cnf, enc, unrolled.stateAt.front(), init);
    constrainStateSet(enc.cnf, enc, unrolled.stateAt.back(), target);

    Solver solver;
    ++result.satCalls;
    if (!solver.addCnf(enc.cnf) || !solver.solve().isTrue()) continue;

    result.reachable = true;
    result.depth = k;
    for (int t = 0; t <= k; ++t) {
      std::vector<bool> state(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        state[static_cast<size_t>(i)] =
            solver.modelValue(enc.varOf(unrolled.stateAt[static_cast<size_t>(t)][static_cast<size_t>(i)]));
      }
      result.traceStates.push_back(std::move(state));
    }
    for (int t = 0; t < k; ++t) {
      std::vector<bool> inputs(static_cast<size_t>(system.numInputs()));
      for (int j = 0; j < system.numInputs(); ++j) {
        inputs[static_cast<size_t>(j)] = solver.modelValue(
            enc.varOf(unrolled.frameInputs[static_cast<size_t>(t)][static_cast<size_t>(j)]));
      }
      result.traceInputs.push_back(std::move(inputs));
    }
    break;
  }
  result.seconds = timer.seconds();
  return result;
}

BmcResult boundedReachIncremental(const TransitionSystem& system, const StateSet& init,
                                  const StateSet& target, int maxDepth) {
  Timer timer;
  const int n = system.numStateBits();
  PRESAT_CHECK(init.numStateBits == n && target.numStateBits == n);
  BmcResult result;
  if (init.cubes.empty() || target.cubes.empty()) {
    result.seconds = timer.seconds();
    return result;
  }

  UnrolledCircuit unrolled = unroll(system, maxDepth);
  CircuitEncoding enc = encodeCircuit(unrolled.netlist);
  constrainStateSet(enc.cnf, enc, unrolled.stateAt.front(), init);

  Solver solver;
  bool consistent = solver.addCnf(enc.cnf);

  for (int k = 0; consistent && k <= maxDepth; ++k) {
    // Activation literal for "target holds at frame k".
    Var activation = solver.newVar();
    LitVec selectors;
    for (const LitVec& cube : target.cubes) {
      Var sel = solver.newVar();
      for (Lit l : cube) {
        NodeId node = unrolled.stateAt[static_cast<size_t>(k)][static_cast<size_t>(l.var())];
        consistent = consistent && solver.addClause({~mkLit(sel), enc.litOf(node, !l.sign())});
      }
      selectors.push_back(mkLit(sel));
    }
    LitVec gate = selectors;
    gate.push_back(~mkLit(activation));
    consistent = consistent && solver.addClause(gate);
    if (!consistent) break;

    ++result.satCalls;
    if (!solver.solve({mkLit(activation)}).isTrue()) continue;

    result.reachable = true;
    result.depth = k;
    for (int t = 0; t <= k; ++t) {
      std::vector<bool> state(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        state[static_cast<size_t>(i)] = solver.modelValue(
            enc.varOf(unrolled.stateAt[static_cast<size_t>(t)][static_cast<size_t>(i)]));
      }
      result.traceStates.push_back(std::move(state));
    }
    for (int t = 0; t < k; ++t) {
      std::vector<bool> inputs(static_cast<size_t>(system.numInputs()));
      for (int j = 0; j < system.numInputs(); ++j) {
        inputs[static_cast<size_t>(j)] = solver.modelValue(
            enc.varOf(unrolled.frameInputs[static_cast<size_t>(t)][static_cast<size_t>(j)]));
      }
      result.traceInputs.push_back(std::move(inputs));
    }
    break;
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace presat
