#include "preimage/bdd_preimage.hpp"

#include "base/log.hpp"
#include "base/timer.hpp"
#include "circuit/netlist.hpp"

namespace presat {

BddTransition::BddTransition(const TransitionSystem& system, Governor* governor)
    : system_(system),
      mgr_(system.numStateBits() + system.numInputs()) {
  mgr_.setGovernor(governor);
  const Netlist& nl = system.netlist();
  // Node -> BDD over (state, input) variables, built in topological order.
  std::vector<BddRef> nodeBdd(nl.numNodes(), BddManager::kFalse);
  std::vector<bool> isSource(nl.numNodes(), false);
  for (int i = 0; i < system.numStateBits(); ++i) {
    nodeBdd[system.stateNode(i)] = mgr_.variable(static_cast<Var>(i));
    isSource[system.stateNode(i)] = true;
  }
  for (int j = 0; j < system.numInputs(); ++j) {
    Var v = static_cast<Var>(system.numStateBits() + j);
    nodeBdd[system.inputNode(j)] = mgr_.variable(v);
    isSource[system.inputNode(j)] = true;
    inputVars_.push_back(v);
  }
  for (NodeId id : nl.topologicalOrder()) {
    const GateNode& g = nl.node(id);
    if (g.type == GateType::kInput || g.type == GateType::kDff) {
      PRESAT_CHECK(isSource[id]) << "unregistered source node";
      continue;
    }
    switch (g.type) {
      case GateType::kConst0:
        nodeBdd[id] = BddManager::kFalse;
        break;
      case GateType::kConst1:
        nodeBdd[id] = BddManager::kTrue;
        break;
      case GateType::kBuf:
        nodeBdd[id] = nodeBdd[g.fanins[0]];
        break;
      case GateType::kNot:
        nodeBdd[id] = mgr_.bddNot(nodeBdd[g.fanins[0]]);
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        BddRef acc = BddManager::kTrue;
        for (NodeId f : g.fanins) acc = mgr_.bddAnd(acc, nodeBdd[f]);
        nodeBdd[id] = g.type == GateType::kNand ? mgr_.bddNot(acc) : acc;
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        BddRef acc = BddManager::kFalse;
        for (NodeId f : g.fanins) acc = mgr_.bddOr(acc, nodeBdd[f]);
        nodeBdd[id] = g.type == GateType::kNor ? mgr_.bddNot(acc) : acc;
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        BddRef acc = BddManager::kFalse;
        for (NodeId f : g.fanins) acc = mgr_.bddXor(acc, nodeBdd[f]);
        nodeBdd[id] = g.type == GateType::kXnor ? mgr_.bddNot(acc) : acc;
        break;
      }
      case GateType::kMux:
        nodeBdd[id] = mgr_.ite(nodeBdd[g.fanins[0]], nodeBdd[g.fanins[2]], nodeBdd[g.fanins[1]]);
        break;
      default:
        PRESAT_CHECK(false) << "unhandled gate type";
    }
  }
  delta_.reserve(static_cast<size_t>(system.numStateBits()));
  for (int i = 0; i < system.numStateBits(); ++i) {
    delta_.push_back(nodeBdd[system.nextStateRoot(i)]);
  }
}

BddRef BddTransition::preimage(BddRef target) {
  // Substitute state variable i by delta_i; input variables stay themselves.
  std::vector<BddRef> substitution(static_cast<size_t>(mgr_.numVars()),
                                   BddManager::kNoSubstitution);
  for (int i = 0; i < system_.numStateBits(); ++i) {
    substitution[static_cast<size_t>(i)] = delta_[static_cast<size_t>(i)];
  }
  BddRef shifted = mgr_.composeVector(target, substitution);
  return mgr_.exists(shifted, inputVars_);
}

StateSet BddTransition::preimage(const StateSet& target) {
  PRESAT_CHECK(target.numStateBits == system_.numStateBits());
  return toStateSet(preimage(target.toBdd(mgr_)));
}

StateSet BddTransition::toStateSet(BddRef stateBdd) {
  StateSet set;
  set.numStateBits = system_.numStateBits();
  set.cubes = mgr_.enumerateCubes(stateBdd);
  for (const LitVec& cube : set.cubes) {
    for (Lit l : cube) {
      PRESAT_CHECK(l.var() < set.numStateBits) << "BDD has input variables in its support";
    }
  }
  return set;
}

BigUint BddTransition::countStates(BddRef stateBdd) {
  // satCount ranges over state and input variables; inputs are not in the
  // support of a state BDD, so divide their factor back out.
  BigUint count = mgr_.satCount(stateBdd);
  count >>= static_cast<uint32_t>(system_.numInputs());
  return count;
}

BddRelationalTransition::BddRelationalTransition(const TransitionSystem& system,
                                                 Governor* governor)
    : system_(system),
      mgr_(2 * system.numStateBits() + system.numInputs()) {
  mgr_.setGovernor(governor);
  const int n = system.numStateBits();
  const Netlist& nl = system.netlist();
  std::vector<BddRef> nodeBdd(nl.numNodes(), BddManager::kFalse);
  for (int i = 0; i < n; ++i) {
    nodeBdd[system.stateNode(i)] = mgr_.variable(static_cast<Var>(i));
  }
  for (int j = 0; j < system.numInputs(); ++j) {
    Var v = static_cast<Var>(2 * n + j);
    nodeBdd[system.inputNode(j)] = mgr_.variable(v);
    quantified_.push_back(v);
  }
  for (NodeId id : nl.topologicalOrder()) {
    const GateNode& g = nl.node(id);
    if (!isCombinational(g.type)) {
      if (g.type == GateType::kConst1) nodeBdd[id] = BddManager::kTrue;
      continue;
    }
    switch (g.type) {
      case GateType::kBuf:
        nodeBdd[id] = nodeBdd[g.fanins[0]];
        break;
      case GateType::kNot:
        nodeBdd[id] = mgr_.bddNot(nodeBdd[g.fanins[0]]);
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        BddRef acc = BddManager::kTrue;
        for (NodeId f : g.fanins) acc = mgr_.bddAnd(acc, nodeBdd[f]);
        nodeBdd[id] = g.type == GateType::kNand ? mgr_.bddNot(acc) : acc;
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        BddRef acc = BddManager::kFalse;
        for (NodeId f : g.fanins) acc = mgr_.bddOr(acc, nodeBdd[f]);
        nodeBdd[id] = g.type == GateType::kNor ? mgr_.bddNot(acc) : acc;
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        BddRef acc = BddManager::kFalse;
        for (NodeId f : g.fanins) acc = mgr_.bddXor(acc, nodeBdd[f]);
        nodeBdd[id] = g.type == GateType::kXnor ? mgr_.bddNot(acc) : acc;
        break;
      }
      case GateType::kMux:
        nodeBdd[id] = mgr_.ite(nodeBdd[g.fanins[0]], nodeBdd[g.fanins[2]], nodeBdd[g.fanins[1]]);
        break;
      default:
        PRESAT_CHECK(false) << "unhandled gate type";
    }
  }
  relation_ = BddManager::kTrue;
  for (int i = 0; i < n; ++i) {
    Var prime = static_cast<Var>(n + i);
    quantified_.push_back(prime);
    relation_ = mgr_.bddAnd(
        relation_, mgr_.bddXnor(mgr_.variable(prime), nodeBdd[system.nextStateRoot(i)]));
  }
  shiftToPrime_.assign(static_cast<size_t>(mgr_.numVars()), BddManager::kNoSubstitution);
  for (int i = 0; i < n; ++i) {
    shiftToPrime_[static_cast<size_t>(i)] = mgr_.variable(static_cast<Var>(n + i));
  }
}

BddRef BddRelationalTransition::preimage(BddRef target) {
  BddRef primed = mgr_.composeVector(target, shiftToPrime_);
  return mgr_.andExists(relation_, primed, quantified_);
}

StateSet BddRelationalTransition::preimage(const StateSet& target) {
  PRESAT_CHECK(target.numStateBits == system_.numStateBits());
  return toStateSet(preimage(target.toBdd(mgr_)));
}

StateSet BddRelationalTransition::toStateSet(BddRef stateBdd) {
  StateSet set;
  set.numStateBits = system_.numStateBits();
  set.cubes = mgr_.enumerateCubes(stateBdd);
  for (const LitVec& cube : set.cubes) {
    for (Lit l : cube) {
      PRESAT_CHECK(l.var() < set.numStateBits) << "preimage BDD escaped the state variables";
    }
  }
  return set;
}

StateSet bddPreimage(const TransitionSystem& system, const StateSet& target, double* seconds,
                     size_t* peakNodes) {
  Timer timer;
  BddTransition transition(system);
  StateSet result = transition.preimage(target);
  if (seconds) *seconds = timer.seconds();
  if (peakNodes) *peakNodes = transition.manager().numNodes();
  return result;
}

}  // namespace presat
