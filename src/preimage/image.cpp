#include "preimage/image.hpp"

#include "allsat/minterm_blocking.hpp"
#include "base/log.hpp"
#include "base/timer.hpp"
#include "bdd/bdd.hpp"
#include "circuit/tseitin.hpp"
#include "preimage/bdd_preimage.hpp"

namespace presat {

const char* imageMethodName(ImageMethod method) {
  switch (method) {
    case ImageMethod::kMintermBlocking: return "minterm-blocking";
    case ImageMethod::kCubeBlocking: return "cube-blocking";
    case ImageMethod::kBdd: return "bdd";
  }
  return "?";
}

namespace {

ImageResult imageViaAllSat(const TransitionSystem& system, const StateSet& from,
                           const AllSatOptions& options) {
  Timer timer;
  const Netlist& nl = system.netlist();
  std::vector<NodeId> roots = system.nextStateRoots();
  for (NodeId s : system.stateNodes()) roots.push_back(s);
  CircuitEncoding enc = encodeCircuit(nl, roots);
  Cnf& cnf = enc.cnf;

  // Present state constrained to `from`.
  if (from.cubes.empty()) {
    cnf.addClause({});
  } else {
    Clause atLeastOne;
    for (const LitVec& cube : from.cubes) {
      Lit sel = mkLit(cnf.newVar());
      atLeastOne.push_back(sel);
      for (Lit l : cube) {
        cnf.addBinary(~sel, enc.litOf(system.stateNode(l.var()), !l.sign()));
      }
    }
    cnf.addClause(std::move(atLeastOne));
  }

  // Projection scope: the next-state function outputs. Two state bits driven
  // by the same node share a variable; the projected index space still has
  // one position per bit, whose values are then always equal — counting and
  // blocking remain exact.
  std::vector<Var> projection;
  projection.reserve(static_cast<size_t>(system.numStateBits()));
  for (int i = 0; i < system.numStateBits(); ++i) {
    projection.push_back(enc.varOf(system.nextStateRoot(i)));
  }

  AllSatResult r = mintermBlockingAllSat(cnf, projection, options);
  ImageResult result;
  result.states.numStateBits = system.numStateBits();
  result.states.cubes = std::move(r.cubes);
  result.stateCount = std::move(r.mintermCount);
  result.complete = r.complete;
  result.stats = r.stats;
  result.seconds = timer.seconds();
  return result;
}

}  // namespace

ImageResult computeImage(const TransitionSystem& system, const StateSet& from,
                         ImageMethod method, const AllSatOptions& options) {
  PRESAT_CHECK(from.numStateBits == system.numStateBits());
  switch (method) {
    case ImageMethod::kMintermBlocking:
      return imageViaAllSat(system, from, options);
    case ImageMethod::kCubeBlocking: {
      // Cube-level blocking over outputs would need a per-cube universality
      // check to stay sound; the minterm engine with model lifting disabled
      // is the honest baseline here.
      return imageViaAllSat(system, from, options);
    }
    case ImageMethod::kBdd: {
      Timer timer;
      BddRelationalTransition transition(system);
      BddManager& mgr = transition.manager();
      const int n = system.numStateBits();
      // Img(F) = unprime(∃s,x. TR ∧ F(s)).
      std::vector<Var> presentAndInputs;
      for (int i = 0; i < n; ++i) presentAndInputs.push_back(static_cast<Var>(i));
      for (int j = 0; j < system.numInputs(); ++j) {
        presentAndInputs.push_back(static_cast<Var>(2 * n + j));
      }
      BddRef primedImage =
          mgr.andExists(transition.relation(), from.toBdd(mgr), presentAndInputs);
      std::vector<BddRef> unprime(static_cast<size_t>(mgr.numVars()),
                                  BddManager::kNoSubstitution);
      for (int i = 0; i < n; ++i) {
        unprime[static_cast<size_t>(n + i)] = mgr.variable(static_cast<Var>(i));
      }
      BddRef image = mgr.composeVector(primedImage, unprime);
      ImageResult result;
      result.states = transition.toStateSet(image);
      BigUint count = mgr.satCount(image);
      count >>= static_cast<uint32_t>(n + system.numInputs());
      result.stateCount = std::move(count);
      result.seconds = timer.seconds();
      return result;
    }
  }
  PRESAT_CHECK(false) << "unknown image method";
  return {};
}

ForwardReachResult forwardReach(const TransitionSystem& system, const StateSet& init,
                                int maxDepth, ImageMethod method, const AllSatOptions& options) {
  Timer timer;
  const int n = system.numStateBits();
  PRESAT_CHECK(init.numStateBits == n);
  BddManager mgr(n);
  BddRef reached = init.toBdd(mgr);
  BddRef frontier = reached;

  ForwardReachResult result;
  for (int depth = 1; depth <= maxDepth; ++depth) {
    if (frontier == BddManager::kFalse) {
      result.fixpoint = true;
      break;
    }
    StateSet frontierSet;
    frontierSet.numStateBits = n;
    frontierSet.cubes = mgr.enumerateCubes(frontier);
    ImageResult img = computeImage(system, frontierSet, method, options);
    PRESAT_CHECK(img.complete) << "forward reachability needs complete images";
    BddRef imgBdd = img.states.toBdd(mgr);
    frontier = mgr.bddAnd(imgBdd, mgr.bddNot(reached));
    reached = mgr.bddOr(reached, imgBdd);
    result.depth = depth;
  }
  if (frontier == BddManager::kFalse) result.fixpoint = true;
  result.reached.numStateBits = n;
  result.reached.cubes = mgr.enumerateCubes(reached);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace presat
