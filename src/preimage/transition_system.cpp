#include "preimage/transition_system.hpp"

#include "base/log.hpp"
#include "circuit/simulator.hpp"

namespace presat {

TransitionSystem::TransitionSystem(const Netlist& netlist) : netlist_(&netlist) {
  PRESAT_CHECK(!netlist.dffs().empty()) << "transition system needs at least one DFF";
  netlist.validate();
  stateNodes_ = netlist.dffs();
  inputNodes_ = netlist.inputs();
  nextRoots_.reserve(stateNodes_.size());
  for (NodeId dff : stateNodes_) nextRoots_.push_back(netlist.dffData(dff));
}

std::vector<bool> TransitionSystem::step(const std::vector<bool>& state,
                                         const std::vector<bool>& inputs) const {
  PRESAT_CHECK(state.size() == stateNodes_.size());
  PRESAT_CHECK(inputs.size() == inputNodes_.size());
  std::vector<bool> sources(netlist_->numNodes(), false);
  for (size_t i = 0; i < stateNodes_.size(); ++i) sources[stateNodes_[i]] = state[i];
  for (size_t i = 0; i < inputNodes_.size(); ++i) sources[inputNodes_[i]] = inputs[i];
  std::vector<bool> values = Simulator::evaluateOnce(*netlist_, sources);
  std::vector<bool> next(stateNodes_.size());
  for (size_t i = 0; i < nextRoots_.size(); ++i) next[i] = values[nextRoots_[i]];
  return next;
}

}  // namespace presat
