#include "preimage/reachability.hpp"

#include <cstdio>
#include <string>

#include "base/log.hpp"
#include "base/timer.hpp"
#include "bdd/bdd.hpp"

namespace presat {

namespace {

// Serializes the per-depth records and totals into `result.metrics` under
// the stable names validated by tools/check_stats_json.py.
void exportReachMetrics(ReachabilityResult& result, PreimageMethod method) {
  Metrics& m = result.metrics;
  for (const ReachabilityStep& step : result.steps) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "step.%04d.", step.depth);
    std::string prefix(buf);
    // Exact counts that overflow u64 degrade to a gauge (same value space
    // the JSON consumer sees for all doubles).
    if (step.newStates.fitsU64()) {
      m.setCounter(prefix + "new_states", step.newStates.toU64());
    } else {
      m.setGauge(prefix + "new_states", step.newStates.toDouble());
    }
    m.setCounter(prefix + "frontier_cubes", step.frontierCubes);
    m.setGauge(prefix + "seconds", step.seconds);
    m.setGauge(prefix + "algebra_seconds", step.algebraSeconds);
  }
  m.setCounter("reach.steps", result.steps.size());
  m.setCounter("reach.fixpoint", result.fixpoint ? 1 : 0);
  m.setGauge("time.seconds", result.totalSeconds);
  m.setGauge("time.preimage_seconds", result.preimageSeconds);
  m.setGauge("time.algebra_seconds", result.algebraSeconds);
  m.setLabel("engine", preimageMethodName(method));
}

}  // namespace

ReachabilityResult backwardReach(const TransitionSystem& system, const StateSet& target,
                                 int maxDepth, PreimageMethod method,
                                 const PreimageOptions& options) {
  Timer total;
  const int n = system.numStateBits();
  PRESAT_CHECK(target.numStateBits == n);

  ReachabilityResult result;

  // Persistent manager for the set algebra between steps. Every BDD
  // operation runs inside an `algebra` span so totalSeconds decomposes into
  // preimage time + set-algebra time (+ negligible loop overhead).
  Timer algebra;
  BddManager mgr(n);
  BddRef reached = target.toBdd(mgr);
  BddRef frontier = reached;
  result.algebraSeconds += algebra.seconds();

  for (int depth = 1; depth <= maxDepth; ++depth) {
    if (frontier == BddManager::kFalse) {
      result.fixpoint = true;
      break;
    }
    algebra.reset();
    StateSet frontierSet;
    frontierSet.numStateBits = n;
    frontierSet.cubes = mgr.enumerateCubes(frontier);
    double stepAlgebra = algebra.seconds();

    PreimageResult pre = computePreimage(system, frontierSet, method, options);
    PRESAT_CHECK(pre.complete) << "reachability needs complete preimages";

    algebra.reset();
    BddRef preBdd = pre.states.toBdd(mgr);
    BddRef fresh = mgr.bddAnd(preBdd, mgr.bddNot(reached));
    reached = mgr.bddOr(reached, preBdd);

    ReachabilityStep step;
    step.depth = depth;
    step.newStates = mgr.satCount(fresh);
    step.totalStates = mgr.satCount(reached);
    step.seconds = pre.seconds;
    step.stats = pre.stats;
    step.frontierCubes = frontierSet.cubes.size();
    stepAlgebra += algebra.seconds();
    step.algebraSeconds = stepAlgebra;
    result.steps.push_back(step);

    result.preimageSeconds += pre.seconds;
    result.algebraSeconds += stepAlgebra;
    frontier = fresh;
  }
  if (!result.fixpoint && frontier == BddManager::kFalse) result.fixpoint = true;

  algebra.reset();
  result.reached.numStateBits = n;
  result.reached.cubes = mgr.enumerateCubes(reached);
  result.algebraSeconds += algebra.seconds();

  result.totalSeconds = total.seconds();
  exportReachMetrics(result, method);
  return result;
}

}  // namespace presat
