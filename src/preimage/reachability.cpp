#include "preimage/reachability.hpp"

#include "base/log.hpp"
#include "base/timer.hpp"
#include "bdd/bdd.hpp"

namespace presat {

ReachabilityResult backwardReach(const TransitionSystem& system, const StateSet& target,
                                 int maxDepth, PreimageMethod method,
                                 const PreimageOptions& options) {
  Timer total;
  const int n = system.numStateBits();
  PRESAT_CHECK(target.numStateBits == n);

  // Persistent manager for the set algebra between steps.
  BddManager mgr(n);
  BddRef reached = target.toBdd(mgr);
  BddRef frontier = reached;

  ReachabilityResult result;
  for (int depth = 1; depth <= maxDepth; ++depth) {
    if (frontier == BddManager::kFalse) {
      result.fixpoint = true;
      break;
    }
    StateSet frontierSet;
    frontierSet.numStateBits = n;
    frontierSet.cubes = mgr.enumerateCubes(frontier);

    PreimageResult pre = computePreimage(system, frontierSet, method, options);
    PRESAT_CHECK(pre.complete) << "reachability needs complete preimages";

    BddRef preBdd = pre.states.toBdd(mgr);
    BddRef fresh = mgr.bddAnd(preBdd, mgr.bddNot(reached));
    reached = mgr.bddOr(reached, preBdd);

    ReachabilityStep step;
    step.depth = depth;
    step.newStates = mgr.satCount(fresh);
    step.totalStates = mgr.satCount(reached);
    step.seconds = pre.seconds;
    step.stats = pre.stats;
    step.frontierCubes = frontierSet.cubes.size();
    result.steps.push_back(step);

    frontier = fresh;
  }
  if (!result.fixpoint && frontier == BddManager::kFalse) result.fixpoint = true;

  result.reached.numStateBits = n;
  result.reached.cubes = mgr.enumerateCubes(reached);
  result.totalSeconds = total.seconds();
  return result;
}

}  // namespace presat
