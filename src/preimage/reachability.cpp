#include "preimage/reachability.hpp"

#include <cstdio>
#include <string>

#include "base/log.hpp"
#include "base/timer.hpp"
#include "bdd/bdd.hpp"
#include "govern/governor.hpp"

namespace presat {

namespace {

// Serializes the per-depth records and totals into `result.metrics` under
// the stable names validated by tools/check_stats_json.py.
void exportReachMetrics(ReachabilityResult& result, PreimageMethod method,
                        const Governor* governor) {
  Metrics& m = result.metrics;
  for (const ReachabilityStep& step : result.steps) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "step.%04d.", step.depth);
    std::string prefix(buf);
    // Exact counts that overflow u64 degrade to a gauge (same value space
    // the JSON consumer sees for all doubles).
    if (step.newStates.fitsU64()) {
      m.setCounter(prefix + "new_states", step.newStates.toU64());
    } else {
      m.setGauge(prefix + "new_states", step.newStates.toDouble());
    }
    m.setCounter(prefix + "frontier_cubes", step.frontierCubes);
    m.setGauge(prefix + "seconds", step.seconds);
    m.setGauge(prefix + "algebra_seconds", step.algebraSeconds);
  }
  m.setCounter("reach.steps", result.steps.size());
  m.setCounter("reach.fixpoint", result.fixpoint ? 1 : 0);
  m.setGauge("time.seconds", result.totalSeconds);
  m.setGauge("time.preimage_seconds", result.preimageSeconds);
  m.setGauge("time.algebra_seconds", result.algebraSeconds);
  m.setLabel("engine", preimageMethodName(method));
  m.setLabel("outcome", outcomeName(result.outcome));
  if (governor != nullptr) governor->exportMetrics(m);
}

}  // namespace

ReachabilityResult backwardReach(const TransitionSystem& system, const StateSet& target,
                                 int maxDepth, PreimageMethod method,
                                 const PreimageOptions& options) {
  Timer total;
  const int n = system.numStateBits();
  PRESAT_CHECK(target.numStateBits == n);

  ReachabilityResult result;

  // Persistent manager for the set algebra between steps. Every BDD
  // operation runs inside an `algebra` span so totalSeconds decomposes into
  // preimage time + set-algebra time (+ negligible loop overhead). The
  // governor (if any) also governs this manager: set-algebra node growth
  // counts against the memory budget, and a trip unwinds via GovernorStop to
  // the catch below with `reached` still holding its last consistent value.
  Governor* governor = options.allsat.governor;

  // One circuit encoding + preprocessing pass for the whole frontier loop:
  // every depth's CNF query instantiates the same preprocessed base formula.
  std::optional<TransitionEncoding> sharedEncoding;
  PreimageOptions preOptions = options;
  if (!options.presimplify && options.encoding == nullptr && preimageMethodUsesCnf(method)) {
    sharedEncoding = buildTransitionEncoding(system, governor);
    preOptions.encoding = &*sharedEncoding;
  }

  Timer algebra;
  BddManager mgr(n);
  mgr.setGovernor(governor);
  BddRef reached = BddManager::kFalse;
  BddRef frontier = BddManager::kFalse;
  try {
    reached = target.toBdd(mgr);
    frontier = reached;
    result.algebraSeconds += algebra.seconds();

    for (int depth = 1; depth <= maxDepth; ++depth) {
      if (frontier == BddManager::kFalse) {
        result.fixpoint = true;
        break;
      }
      algebra.reset();
      StateSet frontierSet;
      frontierSet.numStateBits = n;
      frontierSet.cubes = mgr.enumerateCubes(frontier);
      double stepAlgebra = algebra.seconds();

      PreimageResult pre = computePreimage(system, frontierSet, method, preOptions);

      algebra.reset();
      BddRef preBdd = pre.states.toBdd(mgr);
      BddRef fresh = mgr.bddAnd(preBdd, mgr.bddNot(reached));
      reached = mgr.bddOr(reached, preBdd);

      ReachabilityStep step;
      step.depth = depth;
      step.newStates = mgr.satCount(fresh);
      step.totalStates = mgr.satCount(reached);
      step.seconds = pre.seconds;
      step.stats = pre.stats;
      step.frontierCubes = frontierSet.cubes.size();
      stepAlgebra += algebra.seconds();
      step.algebraSeconds = stepAlgebra;
      result.steps.push_back(step);

      result.preimageSeconds += pre.seconds;
      result.algebraSeconds += stepAlgebra;
      frontier = fresh;

      if (pre.outcome != Outcome::kComplete) {
        // Partial step: its cubes are genuine preimage states, so folding
        // them in above was sound, but the frontier is truncated — iterating
        // on it would never converge to the true fixpoint. Stop here with
        // the step's reason and report `reached` as a lower bound.
        result.outcome = pre.outcome;
        break;
      }
    }
  } catch (const GovernorStop& stop) {
    // Set algebra tripped mid-operation. BddRef assignments are atomic at
    // the statement level, so reached/frontier keep the last values that
    // were fully computed; everything below is node-walk only (no mkNode)
    // and cannot throw again.
    result.outcome = stop.reason;
    result.algebraSeconds += algebra.seconds();
  }
  if (result.outcome != Outcome::kComplete) {
    result.fixpoint = false;
  } else if (!result.fixpoint && frontier == BddManager::kFalse) {
    result.fixpoint = true;
  }

  algebra.reset();
  result.reached.numStateBits = n;
  result.reached.cubes = mgr.enumerateCubes(reached);
  result.algebraSeconds += algebra.seconds();

  result.totalSeconds = total.seconds();
  exportReachMetrics(result, method, governor);
  return result;
}

}  // namespace presat
