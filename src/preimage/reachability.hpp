// Multi-step backward reachability by iterated preimage.
//
// Computes R_0 = T, R_{k+1} = R_k ∪ Pre(frontier_k) until a fixpoint or a
// depth bound, where frontier_k = R_k \ R_{k-1} (only newly discovered states
// are queried — the standard frontier optimization). Set algebra between
// steps runs on a persistent state-space BDD regardless of which preimage
// engine is used, so all engines are compared on identical iteration
// structure.
#pragma once

#include <vector>

#include "preimage/preimage.hpp"

namespace presat {

struct ReachabilityStep {
  int depth = 0;
  BigUint newStates;       // states discovered at this depth
  BigUint totalStates;     // cumulative
  double seconds = 0.0;    // preimage time for this step
  // BDD set-algebra time for this step (frontier enumeration, union/
  // difference, state counting) — the inter-step cost the preimage engines
  // don't see.
  double algebraSeconds = 0.0;
  AllSatStats stats;       // engine stats for this step
  size_t frontierCubes = 0;
};

struct ReachabilityResult {
  StateSet reached;
  bool fixpoint = false;  // true if closed before hitting maxDepth
  // Structured stop reason (govern/budget.hpp). On a partial step the
  // iteration folds that step's sound under-approximation into `reached` and
  // stops: `reached` is then a lower bound on the backward cone and
  // `fixpoint` is forced false (closure cannot be claimed from a truncated
  // frontier).
  Outcome outcome = Outcome::kComplete;
  std::vector<ReachabilityStep> steps;
  // Wall time of the whole iteration, INCLUDING the inter-step set algebra —
  // the two components below account for where it went.
  double totalSeconds = 0.0;
  double preimageSeconds = 0.0;  // sum of steps[i].seconds
  double algebraSeconds = 0.0;   // set-algebra total (incl. setup/final sets)
  // Per-depth step records plus the totals above under stable names
  // ("step.0001.new_states", "reach.steps", "time.algebra_seconds", ...) for
  // presat_cli reach --stats json.
  Metrics metrics;
};

ReachabilityResult backwardReach(const TransitionSystem& system, const StateSet& target,
                                 int maxDepth, PreimageMethod method,
                                 const PreimageOptions& options = {});

}  // namespace presat
