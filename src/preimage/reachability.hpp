// Multi-step backward reachability by iterated preimage.
//
// Computes R_0 = T, R_{k+1} = R_k ∪ Pre(frontier_k) until a fixpoint or a
// depth bound, where frontier_k = R_k \ R_{k-1} (only newly discovered states
// are queried — the standard frontier optimization). Set algebra between
// steps runs on a persistent state-space BDD regardless of which preimage
// engine is used, so all engines are compared on identical iteration
// structure.
#pragma once

#include <vector>

#include "preimage/preimage.hpp"

namespace presat {

struct ReachabilityStep {
  int depth = 0;
  BigUint newStates;       // states discovered at this depth
  BigUint totalStates;     // cumulative
  double seconds = 0.0;    // preimage time for this step
  AllSatStats stats;       // engine stats for this step
  size_t frontierCubes = 0;
};

struct ReachabilityResult {
  StateSet reached;
  bool fixpoint = false;  // true if closed before hitting maxDepth
  std::vector<ReachabilityStep> steps;
  double totalSeconds = 0.0;
};

ReachabilityResult backwardReach(const TransitionSystem& system, const StateSet& target,
                                 int maxDepth, PreimageMethod method,
                                 const PreimageOptions& options = {});

}  // namespace presat
